package cos

import (
	"testing"

	"cos/internal/ofdm"
)

func TestInsertSilencesAndMaskPositions(t *testing.T) {
	g := ofdm.NewGrid(4)
	for s := 0; s < 4; s++ {
		row, err := g.Symbol(s)
		if err != nil {
			t.Fatal(err)
		}
		for d := range row {
			row[d] = 1
		}
	}
	positions := []Pos{{Sym: 0, SC: 5}, {Sym: 2, SC: 5}, {Sym: 3, SC: 9}}
	mask, err := InsertSilences(g, positions)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range positions {
		v, _ := g.At(p.Sym, p.SC)
		if v != 0 {
			t.Errorf("position %+v not silenced", p)
		}
		if !mask[p.Sym][p.SC] {
			t.Errorf("mask missing %+v", p)
		}
	}
	// Untouched positions stay active.
	if v, _ := g.At(1, 5); v != 1 {
		t.Error("untouched symbol modified")
	}
	got := MaskPositions(mask, []int{5, 9})
	if len(got) != 3 {
		t.Fatalf("MaskPositions returned %d entries", len(got))
	}
	// Traversal order: slot-major.
	want := []Pos{{0, 5}, {2, 5}, {3, 9}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MaskPositions[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Restricting the subcarrier set filters positions.
	if got := MaskPositions(mask, []int{9}); len(got) != 1 || got[0] != (Pos{3, 9}) {
		t.Errorf("filtered MaskPositions = %v", got)
	}
}

func TestInsertSilencesOutOfRange(t *testing.T) {
	g := ofdm.NewGrid(2)
	if _, err := InsertSilences(g, []Pos{{Sym: 5, SC: 0}}); err == nil {
		t.Error("out-of-range symbol should error")
	}
	if _, err := InsertSilences(g, []Pos{{Sym: 0, SC: 99}}); err == nil {
		t.Error("out-of-range subcarrier should error")
	}
}
