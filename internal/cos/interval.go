// Package cos implements the paper's contribution: communication through
// symbol silence. Control bits are encoded into the intervals between
// silence symbols inserted on selected (weak) data subcarriers of an
// 802.11a packet; the receiver locates the silences by symbol-level energy
// detection on the raw FFT output and recovers the erased data symbols
// through erasure Viterbi decoding.
//
// The package provides the four mechanisms of Sec. III: the interval
// modulation/demodulation of control messages, the pilot-aided adaptive
// energy detector, the EVM-driven subcarrier selection with its one-symbol
// feedback encoding, and the SNR-indexed control-message rate adaptation.
package cos

import (
	"fmt"

	"cos/internal/ofdm"
)

// DefaultBitsPerInterval is k, the number of control bits conveyed by one
// inter-silence interval (k = 4 in the paper, giving intervals 0..15).
const DefaultBitsPerInterval = 4

// Pos addresses one data symbol in a packet: payload OFDM symbol index and
// data subcarrier slot within the control-subcarrier traversal.
type Pos struct {
	// Sym is the payload OFDM symbol (time slot) index.
	Sym int
	// SC is the data subcarrier index (0..47).
	SC int
}

// EncodeIntervals chunks control bits into k-bit groups, MSB first (the
// paper's example maps "0010" to interval 2). len(controlBits) must be a
// multiple of k.
func EncodeIntervals(controlBits []byte, k int) ([]int, error) {
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("cos: bits per interval %d out of range [1,16]", k)
	}
	if len(controlBits)%k != 0 {
		return nil, fmt.Errorf("cos: control length %d is not a multiple of k=%d", len(controlBits), k)
	}
	out := make([]int, 0, len(controlBits)/k)
	for i := 0; i < len(controlBits); i += k {
		v := 0
		for j := 0; j < k; j++ {
			b := controlBits[i+j]
			if b > 1 {
				return nil, fmt.Errorf("cos: element %d = %d is not a bit", i+j, b)
			}
			v = v<<1 | int(b)
		}
		out = append(out, v)
	}
	return out, nil
}

// DecodeIntervals converts intervals back into control bits (k bits each,
// MSB first).
func DecodeIntervals(intervals []int, k int) ([]byte, error) {
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("cos: bits per interval %d out of range [1,16]", k)
	}
	out := make([]byte, 0, len(intervals)*k)
	for _, v := range intervals {
		if v < 0 || v >= 1<<k {
			return nil, fmt.Errorf("cos: interval %d out of range [0,%d]", v, 1<<k-1)
		}
		for j := k - 1; j >= 0; j-- {
			out = append(out, byte((v>>j)&1))
		}
	}
	return out, nil
}

// Layout places silence symbols for the given intervals onto the control
// subcarriers of a packet. The traversal is slot-major (all control
// subcarriers of symbol 0 in ascending order, then symbol 1, ...), matching
// Fig. 1(a). The first traversal position is always a silence marking the
// start of the control message; each interval v then skips v normal symbols
// before the next silence.
//
// numSymbols is the packet's payload symbol count and ctrlSCs the selected
// control subcarriers (data subcarrier indices 0..47, ascending). Layout
// fails if the message does not fit.
func Layout(intervals []int, numSymbols int, ctrlSCs []int) ([]Pos, error) {
	if err := validateCtrlSCs(ctrlSCs); err != nil {
		return nil, err
	}
	if numSymbols < 1 {
		return nil, fmt.Errorf("cos: packet has %d symbols", numSymbols)
	}
	capacity := numSymbols * len(ctrlSCs)
	need := 1
	for _, v := range intervals {
		if v < 0 {
			return nil, fmt.Errorf("cos: negative interval %d", v)
		}
		need += v + 1
	}
	if need > capacity {
		return nil, fmt.Errorf("cos: message needs %d control positions, packet offers %d (%d symbols x %d subcarriers)",
			need, capacity, numSymbols, len(ctrlSCs))
	}
	out := make([]Pos, 0, len(intervals)+1)
	idx := 0
	emit := func() {
		out = append(out, Pos{Sym: idx / len(ctrlSCs), SC: ctrlSCs[idx%len(ctrlSCs)]})
	}
	emit() // start marker
	for _, v := range intervals {
		idx += v + 1
		emit()
	}
	return out, nil
}

// ExtractIntervals inverts Layout: given the detected silence mask over the
// control subcarriers (mask[s][d] true means subcarrier d of symbol s was
// detected silent), it walks the traversal, treats the first silence as the
// start marker, and returns the gaps between consecutive silences.
func ExtractIntervals(mask [][]bool, ctrlSCs []int) ([]int, error) {
	if err := validateCtrlSCs(ctrlSCs); err != nil {
		return nil, err
	}
	var intervals []int
	started := false
	gap := 0
	for s := range mask {
		if len(mask[s]) != ofdm.NumData {
			return nil, fmt.Errorf("cos: mask row %d has %d entries, want %d", s, len(mask[s]), ofdm.NumData)
		}
		for _, sc := range ctrlSCs {
			silent := mask[s][sc]
			if !started {
				if silent {
					started = true
					gap = 0
				}
				continue
			}
			if silent {
				intervals = append(intervals, gap)
				gap = 0
			} else {
				gap++
			}
		}
	}
	return intervals, nil
}

// MaxMessageBits returns the number of control bits guaranteed to fit in a
// packet of numSymbols symbols over nCtrl control subcarriers with k bits
// per interval, assuming worst-case (maximum) intervals.
func MaxMessageBits(numSymbols, nCtrl, k int) int {
	if numSymbols < 1 || nCtrl < 1 || k < 1 {
		return 0
	}
	capacity := numSymbols * nCtrl
	// Worst case: every interval is 2^k - 1, costing 2^k positions, plus
	// the start marker.
	maxIntervals := (capacity - 1) / (1 << k)
	return maxIntervals * k
}

// SilenceCount returns the number of silence symbols needed to convey the
// given intervals (one per interval plus the start marker).
func SilenceCount(intervals []int) int { return len(intervals) + 1 }

func validateCtrlSCs(ctrlSCs []int) error {
	if len(ctrlSCs) == 0 {
		return fmt.Errorf("cos: no control subcarriers")
	}
	prev := -1
	for _, sc := range ctrlSCs {
		if sc < 0 || sc >= ofdm.NumData {
			return fmt.Errorf("cos: control subcarrier %d out of range [0,%d)", sc, ofdm.NumData)
		}
		if sc <= prev {
			return fmt.Errorf("cos: control subcarriers must be strictly ascending, got %v", ctrlSCs)
		}
		prev = sc
	}
	return nil
}
