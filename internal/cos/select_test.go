package cos

import (
	"testing"

	"cos/internal/modulation"
	"cos/internal/ofdm"
)

func flatEVM(v float64) []float64 {
	out := make([]float64, ofdm.NumData)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSelectControlSubcarriersThreshold(t *testing.T) {
	// 16QAM: Dm/2 = 1/sqrt(10) ~ 0.316. Subcarriers above it qualify.
	evm := flatEVM(0.05)
	evm[3] = 0.40
	evm[17] = 0.35
	evm[44] = 0.90
	got, err := SelectControlSubcarriers(evm, modulation.QAM16, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 17, 44}
	if len(got) != len(want) {
		t.Fatalf("selected %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v", got, want)
		}
	}
}

func TestSelectControlSubcarriersMinCount(t *testing.T) {
	// Clean channel: nothing crosses the threshold, so the weakest fill
	// the quota.
	evm := flatEVM(0.01)
	evm[7] = 0.03
	evm[22] = 0.025
	evm[31] = 0.02
	got, err := SelectControlSubcarriers(evm, modulation.QPSK, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{7, 22, 31}
	if len(got) != 3 {
		t.Fatalf("selected %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v", got, want)
		}
	}
}

func TestSelectControlSubcarriersMaxCount(t *testing.T) {
	// Terrible channel: everything qualifies; cap keeps the weakest N.
	evm := flatEVM(0.9)
	for i := range evm {
		evm[i] += float64(i) * 0.01 // ascending weakness
	}
	got, err := SelectControlSubcarriers(evm, modulation.QAM64, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("selected %d subcarriers, want 4", len(got))
	}
	// The weakest are the last four indices; result must be ascending.
	want := []int{44, 45, 46, 47}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v", got, want)
		}
	}
}

func TestSelectControlSubcarriersHigherOrderSchemesSelectMore(t *testing.T) {
	// The same EVM profile crosses Dm/2 for 64QAM long before BPSK: higher
	// rates leave more subcarriers "doomed", giving CoS more room.
	evm := flatEVM(0.05)
	for _, i := range []int{2, 9, 20, 33, 41} {
		evm[i] = 0.25 // above 64QAM Dm/2 (~0.154), below BPSK Dm/2 (1.0)
	}
	high, err := SelectControlSubcarriers(evm, modulation.QAM64, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	low, err := SelectControlSubcarriers(evm, modulation.BPSK, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(high) != 5 {
		t.Errorf("64QAM selected %v, want the 5 weak subcarriers", high)
	}
	if len(low) != 1 {
		t.Errorf("BPSK selected %v, want only the minCount filler", low)
	}
}

func TestSelectControlSubcarriersValidation(t *testing.T) {
	if _, err := SelectControlSubcarriers(make([]float64, 10), modulation.QPSK, 1, 0); err == nil {
		t.Error("short EVM vector should error")
	}
	if _, err := SelectControlSubcarriers(flatEVM(0.1), modulation.Scheme(0), 1, 0); err == nil {
		t.Error("invalid scheme should error")
	}
	if _, err := SelectControlSubcarriers(flatEVM(0.1), modulation.QPSK, 0, 0); err == nil {
		t.Error("minCount 0 should error")
	}
	if _, err := SelectControlSubcarriers(flatEVM(0.1), modulation.QPSK, 5, 3); err == nil {
		t.Error("maxCount < minCount should error")
	}
}

func TestFeedbackRoundTripNoiseless(t *testing.T) {
	sel := []int{2, 11, 30, 47}
	g, err := EncodeFeedback(sel)
	if err != nil {
		t.Fatal(err)
	}
	row, err := g.Symbol(0)
	if err != nil {
		t.Fatal(err)
	}
	// Directly scan the grid row as an ideal detector would.
	scan := make([]bool, ofdm.NumData)
	for i, v := range row {
		scan[i] = v == 0
	}
	got, err := MaskToSelection(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sel) {
		t.Fatalf("decoded %v, want %v", got, sel)
	}
	for i := range sel {
		if got[i] != sel[i] {
			t.Fatalf("decoded %v, want %v", got, sel)
		}
	}
}

func TestEncodeFeedbackValidation(t *testing.T) {
	// Empty selections are legal: an all-active V symbol (CoS paused).
	g, err := EncodeFeedback(nil)
	if err != nil {
		t.Errorf("empty selection should encode: %v", err)
	} else {
		row, err := g.Symbol(0)
		if err != nil {
			t.Fatal(err)
		}
		for sc, v := range row {
			if v == 0 {
				t.Errorf("empty selection silenced subcarrier %d", sc)
			}
		}
	}
	if _, err := EncodeFeedback([]int{50}); err == nil {
		t.Error("out-of-range selection should error")
	}
}

func TestMaskToSelectionValidation(t *testing.T) {
	if _, err := MaskToSelection(make([]bool, 3)); err == nil {
		t.Error("short scan should error")
	}
}
