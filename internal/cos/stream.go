package cos

import "fmt"

// Control messages longer than one packet's silence budget must span
// packets. A fragment carries an 11-bit header before its payload chunk:
//
//	[4-bit message ID][6-bit fragment index][1-bit last flag][chunk bits]
//
// Fragments ride inside the CRC framing of FrameControl, so corruption is
// detected per fragment; a missing or corrupted fragment aborts the whole
// message (the paper's control messages are small state updates — retrying
// the message beats partial delivery).

// fragment header geometry.
const (
	fragIDBits    = 4
	fragIdxBits   = 6
	fragHeaderLen = fragIDBits + fragIdxBits + 1
	// MaxFragments bounds a message to 64 fragments.
	MaxFragments = 1 << fragIdxBits
)

// Fragmenter splits long control payloads into self-describing fragments.
// The zero value is ready to use; message IDs cycle through 16 values so a
// reassembler can detect a new message starting.
type Fragmenter struct {
	nextID int
}

// Split chunks payload into fragments whose total size (header + chunk)
// stays within maxFragmentBits each. The fragments are bare bit slices:
// wrap each with FrameControl (or send through a Link built with
// WithControlFraming) for integrity.
func (f *Fragmenter) Split(payload []byte, maxFragmentBits int) ([][]byte, error) {
	for i, b := range payload {
		if b > 1 {
			return nil, fmt.Errorf("cos: payload element %d = %d is not a bit", i, b)
		}
	}
	chunkBits := maxFragmentBits - fragHeaderLen
	if chunkBits < 1 {
		return nil, fmt.Errorf("cos: fragment size %d cannot fit the %d-bit header plus payload", maxFragmentBits, fragHeaderLen)
	}
	nFrags := (len(payload) + chunkBits - 1) / chunkBits
	if nFrags == 0 {
		nFrags = 1
	}
	if nFrags > MaxFragments {
		return nil, fmt.Errorf("cos: payload needs %d fragments, limit is %d", nFrags, MaxFragments)
	}
	id := f.nextID
	f.nextID = (f.nextID + 1) & (1<<fragIDBits - 1)

	out := make([][]byte, 0, nFrags)
	for i := 0; i < nFrags; i++ {
		lo := i * chunkBits
		hi := lo + chunkBits
		if hi > len(payload) {
			hi = len(payload)
		}
		frag := make([]byte, 0, fragHeaderLen+hi-lo)
		push := func(v, n int) {
			for b := n - 1; b >= 0; b-- {
				frag = append(frag, byte((v>>b)&1))
			}
		}
		push(id, fragIDBits)
		push(i, fragIdxBits)
		last := 0
		if i == nFrags-1 {
			last = 1
		}
		push(last, 1)
		frag = append(frag, payload[lo:hi]...)
		out = append(out, frag)
	}
	return out, nil
}

// Reassembler rebuilds messages from fragments delivered in packet order.
// The zero value is ready to use.
type Reassembler struct {
	id      int
	nextIdx int
	buf     []byte
	active  bool
}

// Push consumes one received fragment. When the fragment completes a
// message, done is true and complete holds the payload. A fragment that
// does not continue the current message (wrong ID or index) aborts the
// in-progress message: if it is the first fragment of a new message it
// starts that message, otherwise it is dropped with an error.
func (r *Reassembler) Push(fragment []byte) (complete []byte, done bool, err error) {
	if len(fragment) < fragHeaderLen {
		return nil, false, fmt.Errorf("cos: fragment of %d bits is shorter than the header", len(fragment))
	}
	pop := func(off, n int) int {
		v := 0
		for i := 0; i < n; i++ {
			v = v<<1 | int(fragment[off+i]&1)
		}
		return v
	}
	id := pop(0, fragIDBits)
	idx := pop(fragIDBits, fragIdxBits)
	last := pop(fragIDBits+fragIdxBits, 1) == 1
	chunk := fragment[fragHeaderLen:]

	if idx == 0 {
		// A fresh message always starts (implicitly aborting any partial).
		r.id, r.nextIdx, r.buf, r.active = id, 0, r.buf[:0], true
	}
	if !r.active || id != r.id || idx != r.nextIdx {
		wasActive := r.active
		r.active = false
		if wasActive {
			return nil, false, fmt.Errorf("cos: fragment id=%d idx=%d does not continue message id=%d idx=%d; message aborted",
				id, idx, r.id, r.nextIdx)
		}
		return nil, false, fmt.Errorf("cos: stray fragment id=%d idx=%d with no message in progress", id, idx)
	}
	r.buf = append(r.buf, chunk...)
	r.nextIdx++
	if !last {
		return nil, false, nil
	}
	r.active = false
	out := make([]byte, len(r.buf))
	copy(out, r.buf)
	return out, true, nil
}

// InProgress reports whether a partial message is buffered.
func (r *Reassembler) InProgress() bool { return r.active }
