package cos

import (
	"fmt"

	"cos/internal/ofdm"
	"cos/internal/phy"
)

// InsertSilences is the power controller of Fig. 8: it zeroes the grid
// entries at the given positions (a silence symbol is a data symbol
// transmitted with zero power, implemented by feeding 0 into the IFFT) and
// returns the erasure mask in the [symbol][subcarrier] layout the decoder
// and diagnostics consume.
func InsertSilences(grid *ofdm.Grid, positions []Pos) ([][]bool, error) {
	mask := NewMask(grid.NumSymbols())
	for _, p := range positions {
		if err := grid.Set(p.Sym, p.SC, 0); err != nil {
			return nil, fmt.Errorf("cos: silence at %+v: %w", p, err)
		}
		mask[p.Sym][p.SC] = true
	}
	return mask, nil
}

// NewMask allocates an all-false [numSymbols][48] mask.
func NewMask(numSymbols int) [][]bool {
	mask := make([][]bool, numSymbols)
	for i := range mask {
		mask[i] = make([]bool, ofdm.NumData)
	}
	return mask
}

// MaskPositions lists the true entries of a mask in traversal order
// restricted to the given control subcarriers.
func MaskPositions(mask [][]bool, ctrlSCs []int) []Pos {
	var out []Pos
	for s := range mask {
		for _, sc := range ctrlSCs {
			if mask[s][sc] {
				out = append(out, Pos{Sym: s, SC: sc})
			}
		}
	}
	return out
}

// Embed encodes controlBits into silence symbols on the packet's control
// subcarriers: interval encoding, layout, and grid erasure in one call.
// It returns the erasure mask ground truth (what the transmitter actually
// silenced).
func Embed(pkt *phy.TxPacket, ctrlSCs []int, controlBits []byte, k int) ([][]bool, error) {
	intervals, err := EncodeIntervals(controlBits, k)
	if err != nil {
		return nil, err
	}
	positions, err := Layout(intervals, pkt.NumSymbols(), ctrlSCs)
	if err != nil {
		return nil, err
	}
	return InsertSilences(pkt.Grid, positions)
}
