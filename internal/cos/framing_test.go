package cos

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cos/internal/bits"
)

func TestFrameControlRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) // 0..255
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(rng.Intn(2))
		}
		framed, err := FrameControl(payload)
		if err != nil {
			return false
		}
		got, ok := ParseControl(framed)
		return ok && bits.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseControlTrailingGarbage(t *testing.T) {
	// Extraction often returns extra trailing intervals; framing must
	// ignore them.
	payload := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	framed, err := FrameControl(payload)
	if err != nil {
		t.Fatal(err)
	}
	framed = append(framed, 1, 1, 0, 1, 0, 0, 0, 1)
	got, ok := ParseControl(framed)
	if !ok || !bits.Equal(got, payload) {
		t.Errorf("trailing garbage broke parsing: %v %v", got, ok)
	}
}

func TestParseControlDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(rng.Intn(2))
	}
	framed, err := FrameControl(payload)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		corrupt := append([]byte(nil), framed...)
		// Flip 1-3 random bits.
		for f := 0; f <= rng.Intn(3); f++ {
			corrupt[rng.Intn(len(corrupt))] ^= 1
		}
		got, ok := ParseControl(corrupt)
		if !ok || !bits.Equal(got, payload) {
			detected++
		}
	}
	// CRC-8 misses ~1/256 of random corruptions; anything near that is fine.
	if detected < trials*95/100 {
		t.Errorf("corruption detected in only %d/%d trials", detected, trials)
	}
}

func TestParseControlShortInput(t *testing.T) {
	if _, ok := ParseControl(make([]byte, 10)); ok {
		t.Error("short stream should fail")
	}
	// Header says 100 bits but stream carries fewer.
	framed, _ := FrameControl(make([]byte, 100))
	if _, ok := ParseControl(framed[:50]); ok {
		t.Error("truncated stream should fail")
	}
}

func TestFrameControlValidation(t *testing.T) {
	if _, err := FrameControl(make([]byte, 256)); err == nil {
		t.Error("oversized payload should error")
	}
	if _, err := FrameControl([]byte{2}); err == nil {
		t.Error("non-bit payload should error")
	}
	// Empty payload is legal (a bare heartbeat).
	framed, err := FrameControl(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ParseControl(framed)
	if !ok || len(got) != 0 {
		t.Error("empty payload roundtrip failed")
	}
}

func TestPadToInterval(t *testing.T) {
	in := make([]byte, 18)
	out, err := PadToInterval(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Errorf("padded length %d, want 20", len(out))
	}
	if _, err := PadToInterval(in, 0); err == nil {
		t.Error("k=0 should error")
	}
	// Already aligned stays put.
	out, err = PadToInterval(make([]byte, 16), 4)
	if err != nil || len(out) != 16 {
		t.Errorf("aligned input changed: %d, %v", len(out), err)
	}
}

func TestFramedBits(t *testing.T) {
	// 40 payload + 16 overhead = 56, already a multiple of 4.
	if got := FramedBits(40, 4); got != 56 {
		t.Errorf("FramedBits(40,4) = %d, want 56", got)
	}
	// 39 + 16 = 55 -> padded to 56.
	if got := FramedBits(39, 4); got != 56 {
		t.Errorf("FramedBits(39,4) = %d, want 56", got)
	}
	if got := FramedBits(0, 1); got != 16 {
		t.Errorf("FramedBits(0,1) = %d, want 16", got)
	}
}
