package cos

import (
	"fmt"
	"math"

	"cos/internal/dsp"
	"cos/internal/modulation"
	"cos/internal/obs"
	"cos/internal/ofdm"
	"cos/internal/phy"
)

// Detector metrics. Decision counts come from DetectMask (every scanned
// position and every silence verdict); accuracy counts come from
// CompareMasks, which sees the transmitter's ground truth.
var (
	mDetectorScans = obs.Default().Counter("cos_detector_scans_total",
		"Symbol/subcarrier positions scanned by the energy detector.")
	mDetectorSilences = obs.Default().Counter("cos_detector_silences_detected_total",
		"Positions the energy detector declared silent.")
	mDetectorFP = obs.Default().Counter("cos_detector_false_positives_total",
		"Normal symbols detected as silent (vs. ground truth).")
	mDetectorFN = obs.Default().Counter("cos_detector_false_negatives_total",
		"Silence symbols the detector missed (vs. ground truth).")
	mDetectorTruthSilences = obs.Default().Counter("cos_detector_truth_silences_total",
		"Ground-truth silence positions compared.")
	mDetectorTruthNormals = obs.Default().Counter("cos_detector_truth_normals_total",
		"Ground-truth normal positions compared.")
)

// minThresholdFactor floors the adaptive threshold at this multiple of the
// noise floor. A noise-only bin has exponential energy with mean eta, so
// the false-negative probability is exp(-threshold/eta); a floor of 5
// bounds it near 0.7% even on deeply faded subcarriers, reproducing the
// paper's Fig. 10(c) behaviour (false negatives below 1% at every SNR,
// false positives paying the price at very low SNR).
const minThresholdFactor = 5.0

// Detector locates silence symbols by symbol-level energy detection on the
// raw (pre-equalization) FFT bins. The zero value uses the adaptive
// per-subcarrier threshold.
//
// The paper observes that "the dynamic adjustment of energy detection
// threshold is necessary to distinguish subcarrier with only noise from
// subcarrier with deep fading signal" (Sec. III-C). The adaptive threshold
// here implements that per subcarrier: a silent bin carries energy ~ eta
// (the pilot-aided noise-floor estimate of Eqs. (5)-(6)) while an active
// bin on subcarrier k carries ~ |H_k|^2*Es + eta, with H_k known from the
// long-training channel estimate. The threshold sits at the geometric mean
// of the two, floored at minThresholdFactor*eta.
type Detector struct {
	// Scheme is the packet's modulation: the detector must discriminate a
	// silent bin against the constellation's weakest point, whose energy is
	// Scheme.MinPointEnergy() times the subcarrier gain. Zero assumes unit
	// minimum energy (BPSK/QPSK-safe, optimistic for QAM).
	Scheme modulation.Scheme
	// ThresholdFactor scales the adaptive per-subcarrier threshold; zero
	// selects 1.0 (the geometric-mean operating point).
	ThresholdFactor float64
	// FixedThreshold, when positive, bypasses adaptive estimation and uses
	// this absolute post-FFT energy threshold on every subcarrier instead
	// (the Fig. 10(b) threshold sweep and the fixed-threshold ablation).
	FixedThreshold float64
}

// Threshold returns the detection threshold (post-FFT energy) the detector
// uses for data subcarrier sc against the given front end.
func (d Detector) Threshold(fe *phy.FrontEnd, sc int) (float64, error) {
	if d.FixedThreshold > 0 {
		return d.FixedThreshold, nil
	}
	f := d.ThresholdFactor
	if f == 0 {
		f = 1.0
	}
	minE := 1.0
	if d.Scheme.Valid() {
		minE = d.Scheme.MinPointEnergy()
	}
	h, err := fe.ChannelAt(sc)
	if err != nil {
		return 0, err
	}
	eta := fe.NoiseVar
	if eta <= 0 {
		eta = 1e-12
	}
	active := minE*dsp.MagSq(h) + eta
	th := f * math.Sqrt(eta*active)
	if floor := minThresholdFactor * eta; th < floor {
		th = floor
	}
	return th, nil
}

// DetectMask scans the control subcarriers of every payload symbol and
// returns the detected silence mask ([symbol][48]; non-control subcarriers
// are always false).
func (d Detector) DetectMask(fe *phy.FrontEnd, ctrlSCs []int) ([][]bool, error) {
	if err := validateCtrlSCs(ctrlSCs); err != nil {
		return nil, err
	}
	ths := make([]float64, len(ctrlSCs))
	for i, sc := range ctrlSCs {
		th, err := d.Threshold(fe, sc)
		if err != nil {
			return nil, err
		}
		ths[i] = th
	}
	mask := NewMask(fe.NumSymbols())
	silent := 0
	for s := 0; s < fe.NumSymbols(); s++ {
		for i, sc := range ctrlSCs {
			y, err := fe.Bins[s].DataValue(sc)
			if err != nil {
				return nil, err
			}
			if dsp.MagSq(y) < ths[i] {
				mask[s][sc] = true
				silent++
			}
		}
	}
	mDetectorScans.Add(uint64(fe.NumSymbols() * len(ctrlSCs)))
	mDetectorSilences.Add(uint64(silent))
	return mask, nil
}

// DetectSymbol scans all 48 data subcarriers of one payload symbol and
// returns which are silent; used to decode the subcarrier-selection
// feedback symbol.
func (d Detector) DetectSymbol(fe *phy.FrontEnd, sym int) ([]bool, error) {
	if sym < 0 || sym >= fe.NumSymbols() {
		return nil, fmt.Errorf("cos: symbol %d out of range [0,%d)", sym, fe.NumSymbols())
	}
	out := make([]bool, ofdm.NumData)
	for sc := 0; sc < ofdm.NumData; sc++ {
		th, err := d.Threshold(fe, sc)
		if err != nil {
			return nil, err
		}
		y, err := fe.Bins[sym].DataValue(sc)
		if err != nil {
			return nil, err
		}
		out[sc] = dsp.MagSq(y) < th
	}
	return out, nil
}

// DecodeMask interprets an already-detected silence mask: start marker and
// interval extraction, then control-bit decoding. Splitting this from
// DetectMask lets callers time (and instrument) energy detection and
// interval decoding as separate pipeline stages, and keep the mask for the
// erasure decoder even when interval decoding fails.
func DecodeMask(mask [][]bool, ctrlSCs []int, k int) ([]byte, error) {
	intervals, err := ExtractIntervals(mask, ctrlSCs)
	if err != nil {
		return nil, err
	}
	return DecodeIntervals(intervals, k)
}

// ExtractControl runs the receive side of CoS in one call: detect silences
// on the control subcarriers (DetectMask), then interpret the start marker
// and intervals and decode the control bits (DecodeMask). It returns the
// bits and the detected mask (to feed the erasure Viterbi decoder); on an
// interval-decoding error the mask is still returned.
func ExtractControl(fe *phy.FrontEnd, ctrlSCs []int, det Detector, k int) (controlBits []byte, mask [][]bool, err error) {
	mask, err = det.DetectMask(fe, ctrlSCs)
	if err != nil {
		return nil, nil, err
	}
	controlBits, err = DecodeMask(mask, ctrlSCs, k)
	if err != nil {
		return nil, mask, err
	}
	return controlBits, mask, nil
}

// DetectionStats quantifies detector accuracy against ground truth using
// the paper's two metrics (Sec. IV-C).
type DetectionStats struct {
	// FalsePositives counts normal symbols detected as silent.
	FalsePositives int
	// FalseNegatives counts silence symbols missed.
	FalseNegatives int
	// Silences is the number of true silence positions scanned.
	Silences int
	// Normals is the number of true normal positions scanned.
	Normals int
}

// FalsePositiveRate returns P(detected silent | actually normal).
func (s DetectionStats) FalsePositiveRate() float64 {
	if s.Normals == 0 {
		return 0
	}
	return float64(s.FalsePositives) / float64(s.Normals)
}

// FalseNegativeRate returns P(detected normal | actually silent).
func (s DetectionStats) FalseNegativeRate() float64 {
	if s.Silences == 0 {
		return 0
	}
	return float64(s.FalseNegatives) / float64(s.Silences)
}

// Add accumulates another measurement.
func (s *DetectionStats) Add(o DetectionStats) {
	s.FalsePositives += o.FalsePositives
	s.FalseNegatives += o.FalseNegatives
	s.Silences += o.Silences
	s.Normals += o.Normals
}

// CompareMasks evaluates a detected mask against the transmitter's ground
// truth over the control subcarriers.
func CompareMasks(truth, detected [][]bool, ctrlSCs []int) (DetectionStats, error) {
	var stats DetectionStats
	if len(truth) != len(detected) {
		return stats, fmt.Errorf("cos: mask sizes differ (%d vs %d)", len(truth), len(detected))
	}
	if err := validateCtrlSCs(ctrlSCs); err != nil {
		return stats, err
	}
	for s := range truth {
		for _, sc := range ctrlSCs {
			t, d := truth[s][sc], detected[s][sc]
			switch {
			case t && d:
				stats.Silences++
			case t && !d:
				stats.Silences++
				stats.FalseNegatives++
			case !t && d:
				stats.Normals++
				stats.FalsePositives++
			default:
				stats.Normals++
			}
		}
	}
	mDetectorFP.Add(uint64(stats.FalsePositives))
	mDetectorFN.Add(uint64(stats.FalseNegatives))
	mDetectorTruthSilences.Add(uint64(stats.Silences))
	mDetectorTruthNormals.Add(uint64(stats.Normals))
	return stats, nil
}
