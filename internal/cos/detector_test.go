package cos

import (
	"bytes"
	"math/rand"
	"testing"

	"cos/internal/bits"
	"cos/internal/channel"
	"cos/internal/phy"
)

// buildCoSPacket creates a data packet with an embedded control message and
// runs it through ch at the given SNR; returns everything a test needs.
type cosRun struct {
	tx        *phy.TxPacket
	truthMask [][]bool
	fe        *phy.FrontEnd
	psdu      []byte
	ctrl      []byte
	ctrlSCs   []int
}

func runCoS(t *testing.T, rateMbps int, snrDB float64, ctrlSCs []int, nCtrlBits int, seed int64, pos channel.Position) *cosRun {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mode, err := phy.ModeByRate(rateMbps)
	if err != nil {
		t.Fatal(err)
	}
	psdu := make([]byte, 1024)
	rng.Read(psdu)
	ctrl := make([]byte, nCtrlBits)
	for i := range ctrl {
		ctrl[i] = byte(rng.Intn(2))
	}
	pkt, err := phy.BuildPacket(phy.TxConfig{Mode: mode}, psdu)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := Embed(pkt, ctrlSCs, ctrl, DefaultBitsPerInterval)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := pkt.Samples()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := pos.New(false)
	if err != nil {
		t.Fatal(err)
	}
	h := ch.FrequencyResponse(0)
	nv, err := phy.NoiseVarForActualSNR(h, snrDB)
	if err != nil {
		t.Fatal(err)
	}
	rx := ch.Apply(samples, 0, nv, rng)
	fe, err := phy.RunFrontEnd(rx)
	if err != nil {
		t.Fatal(err)
	}
	return &cosRun{tx: pkt, truthMask: mask, fe: fe, psdu: psdu, ctrl: ctrl, ctrlSCs: ctrlSCs}
}

func TestDetectorFindsAllSilencesAtGoodSNR(t *testing.T) {
	r := runCoS(t, 24, 22, []int{9, 10, 11, 12, 13, 14, 15, 16}, 40, 201, channel.PositionB)
	det := Detector{Scheme: r.tx.Config.Mode.Modulation}
	mask, err := det.DetectMask(r.fe, r.ctrlSCs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := CompareMasks(r.truthMask, mask, r.ctrlSCs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FalseNegatives != 0 {
		t.Errorf("missed %d of %d silences at 20 dB", stats.FalseNegatives, stats.Silences)
	}
	if stats.FalsePositiveRate() > 0.02 {
		t.Errorf("false positive rate %v too high at 20 dB", stats.FalsePositiveRate())
	}
	if stats.Silences != 11 { // 40 bits / 4 per interval + start marker
		t.Errorf("scanned %d true silences, want 11", stats.Silences)
	}
}

func TestExtractControlRoundTrip(t *testing.T) {
	r := runCoS(t, 12, 18, []int{4, 12, 20, 28, 40, 44}, 48, 202, channel.PositionC)
	got, mask, err := ExtractControl(r.fe, r.ctrlSCs, Detector{Scheme: r.tx.Config.Mode.Modulation}, DefaultBitsPerInterval)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < len(r.ctrl) || !bits.Equal(got[:len(r.ctrl)], r.ctrl) {
		t.Fatalf("control message corrupted: got %v, want %v", got, r.ctrl)
	}
	// The detected mask must let the data decode too.
	dec, err := r.fe.Decode(phy.DecodeConfig{Mode: r.tx.Config.Mode, PSDULen: len(r.psdu), Erased: mask})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.PSDU, r.psdu) {
		t.Error("data packet corrupted by CoS at 18 dB")
	}
}

func TestThresholdTradeoff(t *testing.T) {
	// Very low fixed threshold -> false negatives; very high -> false
	// positives (Fig. 10(b) shape).
	r := runCoS(t, 12, 9, []int{9, 10, 11, 12, 13, 14, 15, 16}, 40, 203, channel.PositionA)
	lowDet := Detector{FixedThreshold: r.fe.NoiseVar * 0.005}
	highDet := Detector{FixedThreshold: r.fe.NoiseVar * 4000}

	lowMask, err := lowDet.DetectMask(r.fe, r.ctrlSCs)
	if err != nil {
		t.Fatal(err)
	}
	highMask, err := highDet.DetectMask(r.fe, r.ctrlSCs)
	if err != nil {
		t.Fatal(err)
	}
	lowStats, _ := CompareMasks(r.truthMask, lowMask, r.ctrlSCs)
	highStats, _ := CompareMasks(r.truthMask, highMask, r.ctrlSCs)
	if lowStats.FalseNegativeRate() <= highStats.FalseNegativeRate() {
		t.Errorf("low threshold FN %v should exceed high threshold FN %v",
			lowStats.FalseNegativeRate(), highStats.FalseNegativeRate())
	}
	if highStats.FalsePositiveRate() <= lowStats.FalsePositiveRate() {
		t.Errorf("high threshold FP %v should exceed low threshold FP %v",
			highStats.FalsePositiveRate(), lowStats.FalsePositiveRate())
	}
}

func TestDetectorThresholdSelection(t *testing.T) {
	r := runCoS(t, 12, 15, []int{5}, 4, 204, channel.PositionB)
	// Fixed threshold wins regardless of subcarrier.
	if th, err := (Detector{FixedThreshold: 0.5}).Threshold(r.fe, 0); err != nil || th != 0.5 {
		t.Errorf("fixed threshold = %v, %v", th, err)
	}
	// Adaptive threshold scales linearly with the factor (above the floor).
	one, err := (Detector{}).Threshold(r.fe, 5)
	if err != nil {
		t.Fatal(err)
	}
	three, err := (Detector{ThresholdFactor: 3}).Threshold(r.fe, 5)
	if err != nil {
		t.Fatal(err)
	}
	if three < one*2.5 {
		t.Errorf("factor-3 threshold %v should be ~3x factor-1 %v", three, one)
	}
	// Adaptive threshold is at least the noise-floor floor.
	if one < 2*r.fe.NoiseVar*0.99 {
		t.Errorf("threshold %v below the noise floor floor %v", one, 2*r.fe.NoiseVar)
	}
	// Stronger subcarriers get higher thresholds.
	var strongest, weakest int
	var hi, lo float64 = -1, 1e18
	for sc := 0; sc < 48; sc++ {
		h, err := r.fe.ChannelAt(sc)
		if err != nil {
			t.Fatal(err)
		}
		m := real(h)*real(h) + imag(h)*imag(h)
		if m > hi {
			hi, strongest = m, sc
		}
		if m < lo {
			lo, weakest = m, sc
		}
	}
	thStrong, _ := (Detector{}).Threshold(r.fe, strongest)
	thWeak, _ := (Detector{}).Threshold(r.fe, weakest)
	if thStrong <= thWeak {
		t.Errorf("threshold on strongest subcarrier (%v) should exceed weakest (%v)", thStrong, thWeak)
	}
	if _, err := (Detector{}).Threshold(r.fe, 99); err == nil {
		t.Error("out-of-range subcarrier should error")
	}
}

func TestDetectMaskValidation(t *testing.T) {
	r := runCoS(t, 12, 15, []int{5}, 4, 205, channel.PositionB)
	if _, err := (Detector{}).DetectMask(r.fe, nil); err == nil {
		t.Error("empty ctrl set should error")
	}
	if _, err := (Detector{}).DetectSymbol(r.fe, -1); err == nil {
		t.Error("negative symbol should error")
	}
	if _, err := (Detector{}).DetectSymbol(r.fe, r.fe.NumSymbols()); err == nil {
		t.Error("out-of-range symbol should error")
	}
}

func TestCompareMasksValidation(t *testing.T) {
	if _, err := CompareMasks(NewMask(2), NewMask(3), []int{1}); err == nil {
		t.Error("size mismatch should error")
	}
	if _, err := CompareMasks(NewMask(2), NewMask(2), []int{99}); err == nil {
		t.Error("bad ctrl set should error")
	}
}

func TestDetectionStatsAccumulate(t *testing.T) {
	a := DetectionStats{FalsePositives: 1, FalseNegatives: 2, Silences: 10, Normals: 100}
	b := DetectionStats{FalsePositives: 3, FalseNegatives: 0, Silences: 5, Normals: 50}
	a.Add(b)
	if a.FalsePositives != 4 || a.FalseNegatives != 2 || a.Silences != 15 || a.Normals != 150 {
		t.Errorf("Add result %+v", a)
	}
	if a.FalsePositiveRate() != 4.0/150 {
		t.Errorf("FP rate %v", a.FalsePositiveRate())
	}
	if a.FalseNegativeRate() != 2.0/15 {
		t.Errorf("FN rate %v", a.FalseNegativeRate())
	}
	var zero DetectionStats
	if zero.FalsePositiveRate() != 0 || zero.FalseNegativeRate() != 0 {
		t.Error("zero stats should report zero rates")
	}
}

func TestInterferenceCausesFalseNegatives(t *testing.T) {
	// Fig. 10(d): strong pulse interference on a silent bin raises its
	// energy above threshold and the silence is missed.
	rng := rand.New(rand.NewSource(206))
	mode, _ := phy.ModeByRate(12)
	psdu := make([]byte, 1024)
	rng.Read(psdu)
	ctrl := make([]byte, 40)
	for i := range ctrl {
		ctrl[i] = byte(rng.Intn(2))
	}
	ctrlSCs := []int{9, 10, 11, 12, 13, 14, 15, 16}
	ch, _ := channel.PositionB.New(false)
	h := ch.FrequencyResponse(0)
	nv, _ := phy.NoiseVarForActualSNR(h, 15)

	run := func(interfere bool) DetectionStats {
		pkt, err := phy.BuildPacket(phy.TxConfig{Mode: mode}, psdu)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := Embed(pkt, ctrlSCs, ctrl, DefaultBitsPerInterval)
		if err != nil {
			t.Fatal(err)
		}
		samples, _ := pkt.Samples()
		rx := ch.Apply(samples, 0, nv, rng)
		if interfere {
			intf := channel.PulseInterferer{Power: 30, BurstLen: 160, StartProb: 0.01}
			if _, err := intf.Apply(rx, rng); err != nil {
				t.Fatal(err)
			}
		}
		fe, err := phy.RunFrontEnd(rx)
		if err != nil {
			t.Fatal(err)
		}
		mask, err := (Detector{Scheme: mode.Modulation}).DetectMask(fe, ctrlSCs)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := CompareMasks(truth, mask, ctrlSCs)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	var clean, dirty DetectionStats
	for trial := 0; trial < 10; trial++ {
		clean.Add(run(false))
		dirty.Add(run(true))
	}
	if dirty.FalseNegativeRate() <= clean.FalseNegativeRate() {
		t.Errorf("interference FN rate %v should exceed clean %v",
			dirty.FalseNegativeRate(), clean.FalseNegativeRate())
	}
}
