// Package all registers every built-in scenario component. Import it
// blank wherever scenario names must resolve:
//
//	import _ "cos/internal/scenario/all"
//
// The root cos package imports it, so anything built on cos.NewLink (the
// serve executor, the experiment engine, the CLIs) sees the full registry.
package all

import (
	_ "cos/internal/scenario/indoor"
	_ "cos/internal/scenario/outdoor"
	_ "cos/internal/scenario/padding"
	_ "cos/internal/scenario/silence"
)
