// Package silence registers the paper's silence-interval embedding as the
// "cos-silence" scheme: control bits are interval-coded into silence
// symbols on the selected control subcarriers, detected by energy
// thresholding at the receiver, and the detected mask feeds erasure
// Viterbi decoding. This is the scenario-registry face of internal/cos;
// the default link pipeline routes through it byte-for-byte.
package silence

import (
	"fmt"

	icos "cos/internal/cos"
	"cos/internal/phy"
	"cos/internal/scenario"
)

// Embedding is the silence-interval scheme. One instance serves one
// pipeline node and owns its scratch; not safe for concurrent use.
type Embedding struct {
	// Transmit-side scratch.
	intervals []int
	positions []icos.Pos
	truthMask [][]bool
	// Receive-side scratch.
	detMask  [][]bool
	rxIvals  []int
	ctrlBits []byte
}

// New builds a silence-interval embedding instance.
func New() *Embedding { return &Embedding{} }

// Budgeted reports true: silences spend the link's per-packet budget and
// pause when feedback reports no detectable subcarrier.
func (e *Embedding) Budgeted() bool { return true }

// Align returns k: unframed messages must fill whole intervals.
func (e *Embedding) Align(k int) int { return k }

// Capacity is the worst-case interval-layout capacity over nCtrl control
// subcarriers (Sec. III-C).
func (e *Embedding) Capacity(mode phy.Mode, psduLen, nCtrl, k int) int {
	return icos.MaxMessageBits(mode.SymbolsForPSDU(psduLen), nCtrl, k)
}

// Embed interval-codes wire, lays the silences out over the control
// subcarriers, and zeroes the grid at those positions.
func (e *Embedding) Embed(pkt *phy.TxPacket, ctrlSCs []int, wire []byte, k int) ([][]bool, int, error) {
	var err error
	e.intervals, err = icos.EncodeIntervalsInto(e.intervals, wire, k)
	if err != nil {
		return nil, 0, err
	}
	e.positions, err = icos.LayoutInto(e.positions, e.intervals, pkt.NumSymbols(), ctrlSCs)
	if err != nil {
		return nil, 0, err
	}
	e.truthMask, err = icos.InsertSilencesInto(e.truthMask, pkt.Grid, e.positions)
	if err != nil {
		return nil, 0, err
	}
	return e.truthMask, icos.MaskCount(e.truthMask, ctrlSCs), nil
}

// Mask runs energy detection over the control subcarriers.
func (e *Embedding) Mask(fe *phy.FrontEnd, mode phy.Mode, ctrlSCs []int, thresholdFactor float64) ([][]bool, error) {
	det := icos.Detector{Scheme: mode.Modulation, ThresholdFactor: thresholdFactor}
	var err error
	e.detMask, err = det.DetectMaskInto(e.detMask, fe, ctrlSCs)
	if err != nil {
		return nil, err
	}
	return e.detMask, nil
}

// Extract decodes the detected mask back into control bits.
func (e *Embedding) Extract(dec *phy.DecodeResult, mask [][]bool, ctrlSCs []int, k int) ([]byte, error) {
	if mask == nil {
		return nil, fmt.Errorf("cos-silence: extract without a detected mask")
	}
	var err error
	e.rxIvals, err = icos.ExtractIntervalsInto(e.rxIvals, mask, ctrlSCs)
	if err != nil {
		return nil, err
	}
	e.ctrlBits, err = icos.DecodeIntervalsInto(e.ctrlBits, e.rxIvals, k)
	if err != nil {
		return nil, err
	}
	return e.ctrlBits, nil
}

func init() {
	scenario.RegisterEmbedding(scenario.DefaultEmbedding, func(params []float64) (scenario.Embedding, error) {
		if len(params) != 0 {
			return nil, fmt.Errorf("cos-silence: embedding takes no parameters (got %d)", len(params))
		}
		return New(), nil
	})
}
