package scenario_test

// FuzzParseRef lives here rather than next to internal/cos's fuzz targets
// because internal/scenario cannot be imported from there (import cycle
// through the component packages); the Makefile fuzz target runs both.

import (
	"strings"
	"testing"

	"cos/internal/scenario"
)

// FuzzParseRef hammers the scenario-reference parser: it must never panic,
// and every accepted input must round-trip through String back to an
// equivalent Ref (the canonical form is what job specs are keyed on).
func FuzzParseRef(f *testing.F) {
	for _, seed := range []string{
		"", "default", "pulse", "pulse:40,160,0.004", "hybrid-bscpec:0.1,0.05,25",
		"ofdm-padding", "mobile", "a", "a-b-c:1", "x:1,2,3,4,5,6,7,8",
		":", "::", "p:", "p:,", "p:1,", "p:NaN", "p:Inf", "p:-Inf", "p:1e999",
		"p:0x1p4", "P", "p p", "p:1;2", "p:+1", "p:-0", "p:1_000", "p:.5",
		"\x00", "p:\x00", strings.Repeat("a", 300) + ":" + strings.Repeat("1,", 64) + "1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ref, err := scenario.ParseRef(s)
		if err != nil {
			return
		}
		if ref.Name == "" {
			t.Fatalf("ParseRef(%q) accepted an empty name", s)
		}
		for _, p := range ref.Params {
			if p != p {
				t.Fatalf("ParseRef(%q) accepted NaN parameter", s)
			}
		}
		// Round trip: the canonical rendering must parse back to the same
		// reference (name and parameter count/values).
		again, err := scenario.ParseRef(ref.String())
		if err != nil {
			t.Fatalf("ParseRef(%q).String() = %q does not re-parse: %v", s, ref.String(), err)
		}
		if again.Name != ref.Name || len(again.Params) != len(ref.Params) {
			t.Fatalf("round trip drifted: %+v -> %+v", ref, again)
		}
		for i := range ref.Params {
			if again.Params[i] != ref.Params[i] {
				t.Fatalf("param %d drifted: %v -> %v", i, ref.Params[i], again.Params[i])
			}
		}
	})
}
