// Package indoor registers the paper's indoor world components: the
// "indoor-tdl" tapped-delay-line channel model (the measurement campaign's
// positions A/B/C plus the flat reference), the "pulse" interferer, and
// the "pulse" and "mobile" scenario presets. The default scenario routes
// through this package byte-for-byte.
package indoor

import (
	"fmt"
	"math/rand"

	"cos/internal/channel"
	"cos/internal/ofdm"
	"cos/internal/phy"
	"cos/internal/scenario"
)

// Model propagates samples through one indoor TDL realization: tap
// convolution plus AWGN scaled so the realized SNR hits the target. It
// owns its tap scratch; not safe for concurrent use.
type Model struct {
	tdl  *channel.TDL
	taps []complex128
}

// NewModel wraps an already-drawn TDL realization.
func NewModel(tdl *channel.TDL) *Model { return &Model{tdl: tdl} }

// Propagate implements scenario.ChannelModel. Taps are evaluated once and
// reused for the frequency response and the convolution; tap evaluation
// draws no randomness, so this matches separate FrequencyResponse/Apply
// calls bit for bit.
func (m *Model) Propagate(dst, samples []complex128, now, snrDB float64, rng *rand.Rand) ([]complex128, float64, error) {
	m.taps = m.tdl.TapsInto(m.taps, now)
	h := channel.FrequencyResponseFrom(m.taps)
	noiseVar, err := phy.NoiseVarForActualSNR(h, snrDB)
	if err != nil {
		return nil, 0, err
	}
	dst = channel.ApplyTo(dst, samples, m.taps, noiseVar, rng)
	actual, err := phy.ActualSNRdB(h, noiseVar)
	if err != nil {
		return nil, 0, err
	}
	return dst, actual, nil
}

// FrequencyResponse implements scenario.FrequencyResponder.
func (m *Model) FrequencyResponse(now float64) [ofdm.NumSubcarriers]complex128 {
	return m.tdl.FrequencyResponse(now)
}

// newPulse builds the paper's Fig. 10(d) pulse interferer from a
// [power, burstLen, startProb] parameter vector (empty = the figure's
// 40x-power, 160-sample, 0.4% setting).
func newPulse(params []float64) (scenario.Interferer, error) {
	p := &channel.PulseInterferer{Power: 40, BurstLen: 160, StartProb: 0.004}
	switch len(params) {
	case 0:
	case 3:
		p.Power = params[0]
		p.BurstLen = int(params[1])
		p.StartProb = params[2]
	default:
		return nil, fmt.Errorf("scenario: pulse interferer wants [power, burstLen, startProb] (got %d params)", len(params))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func init() {
	scenario.RegisterChannel(scenario.DefaultChannel, func(g scenario.Geometry, params []float64) (scenario.ChannelModel, error) {
		if len(params) != 0 {
			return nil, fmt.Errorf("scenario: indoor-tdl channel takes no parameters (got %d)", len(params))
		}
		tdl, err := g.Position.NewVariant(g.Mobile, g.Variant)
		if err != nil {
			return nil, err
		}
		return NewModel(tdl), nil
	})
	scenario.RegisterInterferer("pulse", newPulse)
	scenario.Register(scenario.Scenario{
		Name:             "pulse",
		Description:      "indoor TDL channel under pulse interference (Fig. 10(d)); params: power, burstLen, startProb",
		Channel:          scenario.DefaultChannel,
		Interferer:       "pulse",
		InterfererParams: []float64{40, 160, 0.004},
		Embedding:        scenario.DefaultEmbedding,
		ParamsFor:        "interferer",
	})
	scenario.Register(scenario.Scenario{
		Name:        "mobile",
		Description: "indoor TDL channel at walking-speed Doppler (the paper's mobile scenario)",
		Channel:     scenario.DefaultChannel,
		Embedding:   scenario.DefaultEmbedding,
		Mobility:    true,
	})
}
