package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Ref is a textual scenario reference: a name with optional parameters,
// written "name" or "name:p1,p2,...". Job specs and CLI flags carry refs;
// FromRef resolves them against the registry.
type Ref struct {
	Name   string
	Params []float64
}

// String renders the canonical textual form (shortest float formatting,
// comma-separated, no spaces).
func (r Ref) String() string {
	if len(r.Params) == 0 {
		return r.Name
	}
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteByte(':')
	for i, p := range r.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(p, 'g', -1, 64))
	}
	return b.String()
}

// ParseRef parses "name" or "name:p1,p2,...". Names are lowercase
// letters, digits, and dashes; parameters are finite floats. ParseRef is
// purely syntactic — it does not consult the registry (FromRef does).
func ParseRef(s string) (Ref, error) {
	name, rest, hasParams := strings.Cut(s, ":")
	if name == "" {
		return Ref{}, fmt.Errorf("scenario: empty scenario name in %q", s)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return Ref{}, fmt.Errorf("scenario: bad scenario name %q (want lowercase letters, digits, dashes)", name)
		}
	}
	r := Ref{Name: name}
	if !hasParams {
		return r, nil
	}
	if rest == "" {
		return Ref{}, fmt.Errorf("scenario: %q has a parameter separator but no parameters", s)
	}
	for _, field := range strings.Split(rest, ",") {
		p, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Ref{}, fmt.Errorf("scenario: bad parameter %q in %q", field, s)
		}
		if p != p || p > 1e300 || p < -1e300 {
			return Ref{}, fmt.Errorf("scenario: non-finite parameter %q in %q", field, s)
		}
		r.Params = append(r.Params, p)
	}
	return r, nil
}

// FromRef parses and resolves a scenario reference. An empty string
// selects the default scenario.
func FromRef(s string) (Scenario, error) {
	if s == "" {
		return Resolve("")
	}
	ref, err := ParseRef(s)
	if err != nil {
		return Scenario{}, err
	}
	return Resolve(ref.Name, ref.Params...)
}

// CanonicalRef resolves a reference and renders its canonical spelling:
// "" for the parameterless default scenario (so absent and explicit
// default collapse onto one spec digest), "name" for parameterless
// scenarios, and "name:p1,..." with the *effective* parameter vector for
// parameterized ones — "pulse" and "pulse:40,160,0.004" (its defaults)
// share one canonical form.
func CanonicalRef(s string) (string, error) {
	sc, err := FromRef(s)
	if err != nil {
		return "", err
	}
	params := sc.Params()
	if sc.Name == DefaultName && len(params) == 0 {
		return "", nil
	}
	return Ref{Name: sc.Name, Params: params}.String(), nil
}
