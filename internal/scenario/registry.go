package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrUnknown is wrapped by Resolve and the Scenario constructors when a
// scenario, channel, interferer, or embedding name has no registration.
var ErrUnknown = errors.New("unknown name")

// ChannelFactory builds a channel model for one geometry. params is the
// scenario's channel parameter vector (empty = defaults); factories must
// reject vectors they cannot honor.
type ChannelFactory func(g Geometry, params []float64) (ChannelModel, error)

// InterfererFactory builds an interferer from a parameter vector.
type InterfererFactory func(params []float64) (Interferer, error)

// EmbeddingFactory builds a fresh embedding instance (one per pipeline
// node) from a parameter vector.
type EmbeddingFactory func(params []float64) (Embedding, error)

var (
	mu          sync.RWMutex
	channels    = map[string]ChannelFactory{}
	interferers = map[string]InterfererFactory{}
	embeddings  = map[string]EmbeddingFactory{}
	scenarios   = map[string]Scenario{}
)

// RegisterChannel registers a channel model factory under name. Panics on
// duplicates — registration is an init-time programming act.
func RegisterChannel(name string, f ChannelFactory) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := channels[name]; dup {
		panic("scenario: duplicate channel " + name)
	}
	channels[name] = f
}

// RegisterInterferer registers an interferer factory under name.
func RegisterInterferer(name string, f InterfererFactory) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := interferers[name]; dup {
		panic("scenario: duplicate interferer " + name)
	}
	interferers[name] = f
}

// RegisterEmbedding registers an embedding factory under name.
func RegisterEmbedding(name string, f EmbeddingFactory) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := embeddings[name]; dup {
		panic("scenario: duplicate embedding " + name)
	}
	embeddings[name] = f
}

// Register registers a named scenario preset. The preset's component names
// are resolved lazily (at NewChannel/NewInterferer/NewEmbedding time), so a
// preset may reference components registered by other packages.
func Register(s Scenario) {
	if s.Name == "" {
		panic("scenario: preset with empty name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := scenarios[s.Name]; dup {
		panic("scenario: duplicate scenario " + s.Name)
	}
	scenarios[s.Name] = s
}

func channelFactory(name string) (ChannelFactory, error) {
	mu.RLock()
	defer mu.RUnlock()
	f, ok := channels[name]
	if !ok {
		return nil, fmt.Errorf("scenario: channel %q (known: %v): %w", name, namesLocked(channels), ErrUnknown)
	}
	return f, nil
}

func interfererFactory(name string) (InterfererFactory, error) {
	mu.RLock()
	defer mu.RUnlock()
	f, ok := interferers[name]
	if !ok {
		return nil, fmt.Errorf("scenario: interferer %q (known: %v): %w", name, namesLocked(interferers), ErrUnknown)
	}
	return f, nil
}

func embeddingFactory(name string) (EmbeddingFactory, error) {
	mu.RLock()
	defer mu.RUnlock()
	f, ok := embeddings[name]
	if !ok {
		return nil, fmt.Errorf("scenario: embedding %q (known: %v): %w", name, namesLocked(embeddings), ErrUnknown)
	}
	return f, nil
}

// Resolve looks up a scenario preset by name and routes optional user
// parameters to the component the preset declares. An empty name selects
// the default scenario.
func Resolve(name string, params ...float64) (Scenario, error) {
	if name == "" {
		name = DefaultName
	}
	mu.RLock()
	s, ok := scenarios[name]
	mu.RUnlock()
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: scenario %q (known: %v): %w", name, Names(), ErrUnknown)
	}
	return s.routeParams(params)
}

// Names lists registered scenario names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked(scenarios)
}

// Channels lists registered channel model names, sorted.
func Channels() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked(channels)
}

// Interferers lists registered interferer names, sorted.
func Interferers() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked(interferers)
}

// Embeddings lists registered embedding names, sorted.
func Embeddings() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked(embeddings)
}

// List returns all registered scenario presets sorted by name — the
// deterministic enumeration behind `cos-sim -list-scenarios` and
// cos-serve's GET /scenarios.
func List() []Scenario {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Scenario, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FormatList renders the registered presets as a stable sorted text
// listing — the shared body of `cos-sim -list-scenarios`. Each preset
// prints its canonical reference (default parameters spelled out), its
// component names with defaults made explicit, and its description.
func FormatList() string {
	var b strings.Builder
	for _, s := range List() {
		ref := Ref{Name: s.Name, Params: s.Params()}.String()
		ch := s.Channel
		if ch == "" {
			ch = DefaultChannel
		}
		emb := s.Embedding
		if emb == "" {
			emb = DefaultEmbedding
		}
		fmt.Fprintf(&b, "%-24s channel=%s", ref, ch)
		if s.Interferer != "" {
			fmt.Fprintf(&b, " interferer=%s", s.Interferer)
		}
		fmt.Fprintf(&b, " embedding=%s", emb)
		if s.Mobility {
			b.WriteString(" mobile")
		}
		b.WriteByte('\n')
		if s.Description != "" {
			b.WriteString("    " + s.Description + "\n")
		}
	}
	return b.String()
}

func namesLocked[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(Scenario{
		Name:        DefaultName,
		Description: "the paper's indoor world: TDL channel, no interferer, silence-interval embedding",
		Channel:     DefaultChannel,
		Embedding:   DefaultEmbedding,
	})
}
