package scenario_test

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"cos/internal/channel"
	"cos/internal/scenario"
	_ "cos/internal/scenario/all"
)

// TestResolveAndListing pins the registry surface: the built-in presets
// resolve, listings are sorted and deterministic, and unknown names wrap
// ErrUnknown.
func TestResolveAndListing(t *testing.T) {
	names := scenario.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"default", "hybrid-bscpec", "mobile", "ofdm-padding", "pulse"} {
		if _, err := scenario.Resolve(want); err != nil {
			t.Errorf("Resolve(%q): %v", want, err)
		}
	}
	if _, err := scenario.Resolve("no-such-world"); !errors.Is(err, scenario.ErrUnknown) {
		t.Errorf("Resolve(unknown) = %v, want ErrUnknown", err)
	}
	if s, err := scenario.Resolve(""); err != nil || s.Name != scenario.DefaultName {
		t.Errorf("Resolve(\"\") = %+v, %v; want the default preset", s, err)
	}
	list := scenario.List()
	if len(list) != len(names) {
		t.Fatalf("List() has %d entries, Names() %d", len(list), len(names))
	}
	for i, s := range list {
		if s.Name != names[i] {
			t.Errorf("List()[%d] = %q, want %q", i, s.Name, names[i])
		}
	}
	for _, kind := range [][]string{scenario.Channels(), scenario.Interferers(), scenario.Embeddings()} {
		if !sort.StringsAreSorted(kind) {
			t.Errorf("component listing not sorted: %v", kind)
		}
	}
}

// TestFormatListDeterministic pins the -list-scenarios text: stable across
// calls, sorted, one reference per preset with defaults spelled out.
func TestFormatListDeterministic(t *testing.T) {
	a, b := scenario.FormatList(), scenario.FormatList()
	if a != b {
		t.Fatal("FormatList() is not deterministic")
	}
	for _, want := range []string{
		"default", "channel=indoor-tdl", "embedding=cos-silence",
		"pulse:40,160,0.004", "hybrid-bscpec:0.1,0.05,25",
		"embedding=ofdm-padding", "mobile",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("FormatList() missing %q:\n%s", want, a)
		}
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	var heads []string
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "    ") {
			heads = append(heads, strings.Fields(ln)[0])
		}
	}
	if !sort.StringsAreSorted(heads) {
		t.Errorf("FormatList() presets not sorted: %v", heads)
	}
}

// TestParamRouting pins Resolve's parameter routing: params land on the
// component the preset declares, and parameterless presets reject them.
func TestParamRouting(t *testing.T) {
	s, err := scenario.Resolve("pulse", 50, 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{50, 100, 0.01}; !reflect.DeepEqual(s.InterfererParams, want) {
		t.Fatalf("InterfererParams = %v, want %v", s.InterfererParams, want)
	}
	if _, err := scenario.Resolve("default", 1); err == nil {
		t.Error("Resolve(default, params...) must fail: the preset takes no parameters")
	}
	if _, err := scenario.Resolve("mobile", 1); err == nil {
		t.Error("Resolve(mobile, params...) must fail: the preset takes no parameters")
	}
	h, err := scenario.Resolve("hybrid-bscpec", 0.2, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0.2, 0.1, 10}; !reflect.DeepEqual(h.ChannelParams, want) {
		t.Fatalf("ChannelParams = %v, want %v", h.ChannelParams, want)
	}
}

// TestRefRoundTrip pins Ref's textual form and CanonicalRef's collapsing
// rules (the spec-digest invariants ride on these).
func TestRefRoundTrip(t *testing.T) {
	for _, tc := range []struct{ in, out string }{
		{"pulse", "pulse"},
		{"pulse:40,160,0.004", "pulse:40,160,0.004"},
		{"hybrid-bscpec:0.25,0.05,12.5", "hybrid-bscpec:0.25,0.05,12.5"},
	} {
		ref, err := scenario.ParseRef(tc.in)
		if err != nil {
			t.Errorf("ParseRef(%q): %v", tc.in, err)
			continue
		}
		if got := ref.String(); got != tc.out {
			t.Errorf("ParseRef(%q).String() = %q, want %q", tc.in, got, tc.out)
		}
	}
	for _, bad := range []string{"", ":1", "UPPER", "pulse:", "pulse:x", "pulse:1e999", "a b"} {
		if _, err := scenario.ParseRef(bad); err == nil {
			t.Errorf("ParseRef(%q) accepted", bad)
		}
	}

	for _, tc := range []struct{ in, want string }{
		{"", ""},
		{"default", ""},
		{"pulse", "pulse:40,160,0.004"},
		{"pulse:40,160,0.004", "pulse:40,160,0.004"},
		{"pulse:80,160,0.004", "pulse:80,160,0.004"},
		{"hybrid-bscpec", "hybrid-bscpec:0.1,0.05,25"},
		{"ofdm-padding", "ofdm-padding"},
		{"mobile", "mobile"},
	} {
		got, err := scenario.CanonicalRef(tc.in)
		if err != nil {
			t.Errorf("CanonicalRef(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("CanonicalRef(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if _, err := scenario.CanonicalRef("no-such-world"); err == nil {
		t.Error("CanonicalRef(unknown) accepted")
	}
}

// TestComposition pins the constructor semantics the pipeline relies on:
// mobility ORs into the geometry, Interfered(nil) is the identity, and a
// composed interferer preserves the FrequencyResponder capability.
func TestComposition(t *testing.T) {
	mobile, err := scenario.Resolve("mobile")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := mobile.NewChannel(scenario.Geometry{Position: channel.PositionA})
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := ch.(scenario.FrequencyResponder)
	if !ok {
		t.Fatal("indoor channel lost its FrequencyResponder capability")
	}
	if fr.FrequencyResponse(0) == fr.FrequencyResponse(0.050) {
		t.Error("mobile preset produced a time-invariant channel")
	}

	if none, err := (scenario.Scenario{}).NewInterferer(); err != nil || none != nil {
		t.Fatalf("zero scenario NewInterferer = %v, %v; want nil, nil", none, err)
	}
	if got := scenario.Interfered(ch, nil); got != ch {
		t.Error("Interfered(model, nil) must return the model unchanged")
	}

	pulse, err := scenario.Resolve("pulse")
	if err != nil {
		t.Fatal(err)
	}
	intf, err := pulse.NewInterferer()
	if err != nil {
		t.Fatal(err)
	}
	composed := scenario.Interfered(ch, intf)
	if composed == ch {
		t.Fatal("Interfered(model, intf) must wrap the model")
	}
	if _, ok := composed.(scenario.FrequencyResponder); !ok {
		t.Error("composition dropped the FrequencyResponder capability")
	}
	samples := make([]complex128, 512)
	if _, _, err := composed.Propagate(nil, samples, 0, 18, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("composed Propagate: %v", err)
	}
}

// TestRegisterDuplicatePanics pins registration as an init-time act: a
// second registration under a taken name is a programming error.
func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	scenario.Register(scenario.Scenario{Name: "default"})
}
