// Package padding registers the "ofdm-padding" embedding: OFDM frame
// padding steganography after Szczypiorski & Mazurczyk's WiPad. 802.11a
// pads every packet's final OFDM symbol with throwaway bits; this scheme
// writes the control message into that pad region instead, riding the
// packet's own FEC. No silences are inserted and no energy detection runs —
// the channel cost is zero and the capacity is the pad size, but unlike
// CoS silences the bits are only recoverable when the packet itself
// decodes (they share the data packet's fate).
//
// Mechanically: the transmit chain zeroes the scrambled-domain tail and
// pad (see phy.buildPacket), so the pad region of the receiver's
// descrambled DataBits is pure keystream. Embed writes ctrl XOR keystream
// into the scrambled pad — leaving the final 6 scrambled bits zero so the
// trellis stays terminated — and rebuilds the coded chain and grid;
// Extract then reads the control bits straight out of DataBits.
package padding

import (
	"fmt"

	"cos/internal/bits"
	"cos/internal/coding"
	"cos/internal/ofdm"
	"cos/internal/phy"
	"cos/internal/scenario"
)

// serviceBits is the 802.11a SERVICE field length (17.3.5.2); the data-bit
// layout is SERVICE + PSDU + 6 tail + pad.
const serviceBits = 16

// tailBits is the convolutional encoder flush length.
const tailBits = 6

// Name is the registered embedding name.
const Name = "ofdm-padding"

// Embedding is the OFDM-padding scheme. One instance serves one pipeline
// node and owns its scratch; not safe for concurrent use.
type Embedding struct {
	zeros       []byte
	key         []byte
	coded       []byte
	punctured   []byte
	interleaved []byte
	points      []complex128
	ctrl        []byte
}

// New builds an OFDM-padding embedding instance.
func New() *Embedding { return &Embedding{} }

// Budgeted reports false: padding spends no silence budget and needs no
// detectable subcarriers.
func (e *Embedding) Budgeted() bool { return false }

// Align returns 1: any control length fits bit-for-bit.
func (e *Embedding) Align(int) int { return 1 }

// padRegion returns the [start, end) data-bit indices available for
// control: the pad after the encoder tail, minus the final 6 bits kept
// zero (scrambled domain) for trellis termination.
func padRegion(mode phy.Mode, psduLen int) (start, end int) {
	total := mode.SymbolsForPSDU(psduLen) * mode.NDBPS()
	start = serviceBits + 8*psduLen + tailBits
	end = total - tailBits
	if end < start {
		end = start
	}
	return start, end
}

// Capacity is the pad size for this mode and PSDU length; the control
// subcarrier set and interval width are irrelevant to padding.
func (e *Embedding) Capacity(mode phy.Mode, psduLen, _, _ int) int {
	start, end := padRegion(mode, psduLen)
	return end - start
}

// Embed writes wire XOR keystream into the packet's scrambled pad region
// and rebuilds the coded bits and grid. It returns no silence mask.
func (e *Embedding) Embed(pkt *phy.TxPacket, _ []int, wire []byte, _ int) ([][]bool, int, error) {
	mode := pkt.Config.Mode
	start, end := padRegion(mode, len(pkt.PSDU))
	if len(wire) > end-start {
		return nil, 0, fmt.Errorf("ofdm-padding: %d control bits exceed the %d-bit pad", len(wire), end-start)
	}
	total := len(pkt.ScrambledBits)
	// The scrambler keystream: scramble(x) = x XOR key, so key = scramble(0).
	if cap(e.zeros) < total {
		e.zeros = make([]byte, total)
	}
	e.zeros = e.zeros[:total]
	for i := range e.zeros {
		e.zeros[i] = 0
	}
	seed := pkt.Config.ScramblerSeed
	if seed == 0 {
		seed = phy.DefaultScramblerSeed
	}
	e.key = bits.NewScrambler(seed).ScrambleInto(e.key, e.zeros)
	for i, b := range wire {
		if b > 1 {
			return nil, 0, fmt.Errorf("ofdm-padding: control byte %d at index %d is not a bit", b, i)
		}
		pkt.ScrambledBits[start+i] = b ^ e.key[start+i]
	}

	// Re-run the coded chain from the mutated scrambled bits and rewrite
	// the grid in place (mirrors phy.buildPacketInto's post-scramble
	// stages), keeping pkt.CodedBits truthful for probe diagnostics.
	var err error
	e.coded, err = coding.ConvEncodeInto(e.coded, pkt.ScrambledBits)
	if err != nil {
		return nil, 0, err
	}
	e.punctured, err = coding.PunctureInto(e.punctured, e.coded, mode.CodeRate)
	if err != nil {
		return nil, 0, err
	}
	il, err := coding.CachedInterleaver(mode.NCBPS(), mode.NBPSC())
	if err != nil {
		return nil, 0, err
	}
	e.interleaved, err = coding.InterleaveInto(il, e.interleaved, e.punctured)
	if err != nil {
		return nil, 0, err
	}
	e.points, err = mode.Modulation.MapBitsInto(e.points, e.interleaved)
	if err != nil {
		return nil, 0, err
	}
	nSym := pkt.NumSymbols()
	if len(e.points) != nSym*ofdm.NumData {
		return nil, 0, fmt.Errorf("ofdm-padding: internal error: %d points for %d symbols", len(e.points), nSym)
	}
	for s := 0; s < nSym; s++ {
		row, err := pkt.Grid.Symbol(s)
		if err != nil {
			return nil, 0, err
		}
		copy(row, e.points[s*ofdm.NumData:(s+1)*ofdm.NumData])
	}
	copy(pkt.CodedBits, e.interleaved)
	return nil, 0, nil
}

// Mask returns nil: padding marks no erasures.
func (e *Embedding) Mask(*phy.FrontEnd, phy.Mode, []int, float64) ([][]bool, error) {
	return nil, nil
}

// Extract reads the whole pad region out of the descrambled data bits.
// Bits past the embedded message decode as keystream garbage, exactly as
// trailing noise decodes as extra intervals for silences; callers match
// prefixes or validate framing.
func (e *Embedding) Extract(dec *phy.DecodeResult, _ [][]bool, _ []int, _ int) ([]byte, error) {
	start := serviceBits + 8*len(dec.PSDU) + tailBits
	end := len(dec.DataBits) - tailBits
	if end < start {
		end = start
	}
	n := end - start
	if cap(e.ctrl) < n {
		e.ctrl = make([]byte, n)
	}
	e.ctrl = e.ctrl[:n]
	copy(e.ctrl, dec.DataBits[start:end])
	return e.ctrl, nil
}

func init() {
	scenario.RegisterEmbedding(Name, func(params []float64) (scenario.Embedding, error) {
		if len(params) != 0 {
			return nil, fmt.Errorf("ofdm-padding: embedding takes no parameters (got %d)", len(params))
		}
		return New(), nil
	})
	scenario.Register(scenario.Scenario{
		Name:        Name,
		Description: "indoor TDL channel with WiPad OFDM-padding steganography instead of silences",
		Channel:     scenario.DefaultChannel,
		Embedding:   Name,
	})
}
