package padding

import (
	"bytes"
	"math/rand"
	"testing"

	"cos/internal/phy"
)

// loopback builds a packet, embeds wire into its pad, runs the noiseless
// receive chain, and returns the extracted pad bits.
func loopback(t *testing.T, mode phy.Mode, psdu, wire []byte, seed byte) []byte {
	t.Helper()
	e := New()
	tx, err := phy.BuildPacket(phy.TxConfig{Mode: mode, ScramblerSeed: seed}, psdu)
	if err != nil {
		t.Fatal(err)
	}
	mask, n, err := e.Embed(tx, nil, wire, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mask != nil || n != 0 {
		t.Fatalf("Embed returned mask=%v silences=%d; padding must insert none", mask, n)
	}
	samples, err := tx.Samples()
	if err != nil {
		t.Fatal(err)
	}
	fe, err := phy.RunFrontEnd(samples)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fe.Decode(phy.DecodeConfig{Mode: mode, PSDULen: len(psdu), ScramblerSeed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.PSDU, psdu) {
		t.Fatal("embedding the pad corrupted the data payload")
	}
	got, err := e.Extract(dec, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestRoundTrip pins the core claim: control bits written into the pad
// come back bit-exact through the noiseless PHY, the data payload is
// untouched, and bits past the message decode as keystream (non-panicking
// garbage the caller prefix-matches, like trailing silence intervals).
func TestRoundTrip(t *testing.T) {
	mode, err := phy.ModeByRate(24)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, psduLen := range []int{100, 256, 1024} {
		psdu := make([]byte, psduLen)
		rng.Read(psdu)
		e := New()
		capBits := e.Capacity(mode, psduLen, 0, 0)
		if capBits <= 0 {
			t.Fatalf("capacity %d for psduLen %d; the pad must be usable", capBits, psduLen)
		}
		wire := make([]byte, capBits/2)
		for i := range wire {
			wire[i] = byte(rng.Intn(2))
		}
		got := loopback(t, mode, psdu, wire, 0)
		if len(got) != capBits {
			t.Fatalf("Extract returned %d bits, want the full %d-bit pad", len(got), capBits)
		}
		if !bytes.Equal(got[:len(wire)], wire) {
			t.Fatalf("pad round trip corrupted the message (psduLen %d)", psduLen)
		}
	}
}

// TestRoundTripNonDefaultSeed pins the keystream handling: a non-default
// scrambler seed changes the key on both sides coherently.
func TestRoundTripNonDefaultSeed(t *testing.T) {
	mode, err := phy.ModeByRate(12)
	if err != nil {
		t.Fatal(err)
	}
	psdu := make([]byte, 197) // leaves a 28-bit pad at 12 Mbps
	rand.New(rand.NewSource(9)).Read(psdu)
	wire := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	got := loopback(t, mode, psdu, wire, 0x2A)
	if !bytes.Equal(got[:len(wire)], wire) {
		t.Fatal("round trip with ScramblerSeed 0x2A corrupted the message")
	}
}

// TestEmbedRejects pins the error contract: oversized messages and
// non-bit bytes are refused before the grid is touched.
func TestEmbedRejects(t *testing.T) {
	mode, err := phy.ModeByRate(24)
	if err != nil {
		t.Fatal(err)
	}
	psdu := make([]byte, 256)
	tx, err := phy.BuildPacket(phy.TxConfig{Mode: mode}, psdu)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	capBits := e.Capacity(mode, len(psdu), 0, 0)
	if _, _, err := e.Embed(tx, nil, make([]byte, capBits+1), 4); err == nil {
		t.Error("Embed accepted a message larger than the pad")
	}
	if _, _, err := e.Embed(tx, nil, []byte{1, 2}, 4); err == nil {
		t.Error("Embed accepted a non-bit control byte")
	}
}

// TestInterfaceContract pins the scheme's interface answers: unbudgeted,
// bit-aligned, maskless.
func TestInterfaceContract(t *testing.T) {
	e := New()
	if e.Budgeted() {
		t.Error("padding reported Budgeted")
	}
	if e.Align(4) != 1 || e.Align(1) != 1 {
		t.Error("padding must align to single bits")
	}
	mask, err := e.Mask(nil, phy.Mode{}, nil, 0)
	if err != nil || mask != nil {
		t.Errorf("Mask = %v, %v; want nil, nil", mask, err)
	}
}

// TestCapacityMatchesPadLayout pins the 802.11a arithmetic: the pad is the
// last symbol's slack minus the 6 reserved termination bits.
func TestCapacityMatchesPadLayout(t *testing.T) {
	e := New()
	for _, rate := range []int{6, 12, 24, 36, 54} {
		mode, err := phy.ModeByRate(rate)
		if err != nil {
			t.Fatal(err)
		}
		for _, psduLen := range []int{64, 100, 1024} {
			total := mode.SymbolsForPSDU(psduLen) * mode.NDBPS()
			want := total - (serviceBits + 8*psduLen + tailBits) - tailBits
			if want < 0 {
				want = 0
			}
			if got := e.Capacity(mode, psduLen, 8, 4); got != want {
				t.Errorf("rate %d psdu %d: capacity %d, want %d", rate, psduLen, got, want)
			}
		}
	}
}
