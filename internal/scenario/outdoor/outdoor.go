// Package outdoor registers the "hybrid-bscpec" channel model after Chen &
// Leith's outdoor WLAN measurements: a hybrid of a packet-erasure channel
// (whole frames lost with probability q — deep fades, collisions) and a
// binary-symmetric channel (individual symbols corrupted with probability
// p — the regime where corrupted frames still carry information). On top
// of flat AWGN at the target SNR, each packet either has its entire
// payload blasted with strong noise (erasure: the FCS cannot pass) or has
// each OFDM symbol independently corrupted, which flips coded bits at a
// near-1/2 rate within the symbol (the BSC marginal).
package outdoor

import (
	"fmt"
	"math"
	"math/rand"

	"cos/internal/channel"
	"cos/internal/ofdm"
	"cos/internal/phy"
	"cos/internal/scenario"
)

// Name is the registered channel-model name.
const Name = "hybrid-bscpec"

// Default hybrid parameters: [q, p, power].
const (
	defaultEraseProb   = 0.1  // q: packet-erasure probability
	defaultCorruptProb = 0.05 // p: per-OFDM-symbol corruption probability
	defaultBurstPower  = 25   // corruption noise power, x the AWGN floor
)

// Model is the hybrid BSC/PEC channel. The propagation itself is flat
// (single unit tap), so the realized SNR always equals the target; the
// erasure and corruption draws ride the same RNG stream after the AWGN
// draws, keeping the whole packet deterministic per seed.
type Model struct {
	eraseProb   float64
	corruptProb float64
	burstPower  float64
	taps        []complex128
}

// New builds a hybrid model from a [q, p, power] parameter vector
// (empty = defaults).
func New(params []float64) (*Model, error) {
	m := &Model{
		eraseProb:   defaultEraseProb,
		corruptProb: defaultCorruptProb,
		burstPower:  defaultBurstPower,
		taps:        []complex128{1},
	}
	switch len(params) {
	case 0:
	case 3:
		m.eraseProb, m.corruptProb, m.burstPower = params[0], params[1], params[2]
	default:
		return nil, fmt.Errorf("scenario: hybrid-bscpec channel wants [eraseProb, corruptProb, burstPower] (got %d params)", len(params))
	}
	if m.eraseProb < 0 || m.eraseProb > 1 {
		return nil, fmt.Errorf("scenario: hybrid-bscpec eraseProb %v outside [0,1]", m.eraseProb)
	}
	if m.corruptProb < 0 || m.corruptProb > 1 {
		return nil, fmt.Errorf("scenario: hybrid-bscpec corruptProb %v outside [0,1]", m.corruptProb)
	}
	if m.burstPower <= 0 {
		return nil, fmt.Errorf("scenario: hybrid-bscpec burstPower %v must be positive", m.burstPower)
	}
	return m, nil
}

// Propagate implements scenario.ChannelModel: flat AWGN at the target SNR,
// then one erasure draw per packet and one corruption draw per payload
// OFDM symbol.
func (m *Model) Propagate(dst, samples []complex128, now, snrDB float64, rng *rand.Rand) ([]complex128, float64, error) {
	h := channel.FrequencyResponseFrom(m.taps)
	noiseVar, err := phy.NoiseVarForActualSNR(h, snrDB)
	if err != nil {
		return nil, 0, err
	}
	dst = channel.ApplyTo(dst, samples, m.taps, noiseVar, rng)
	// Corruption noise amplitude per I/Q component, mirroring AddAWGN's
	// convention (noiseVar split evenly across the two components).
	amp := math.Sqrt(m.burstPower * noiseVar / 2)
	payload := dst
	if len(payload) > ofdm.PreambleLen {
		// Leave the preamble intact: erasure means the frame check fails,
		// not that the front end loses sync entirely.
		payload = payload[ofdm.PreambleLen:]
	}
	if rng.Float64() < m.eraseProb {
		corrupt(payload, amp, rng)
	} else if m.corruptProb > 0 {
		for off := 0; off < len(payload); off += ofdm.SymbolLen {
			end := off + ofdm.SymbolLen
			if end > len(payload) {
				end = len(payload)
			}
			if rng.Float64() < m.corruptProb {
				corrupt(payload[off:end], amp, rng)
			}
		}
	}
	actual, err := phy.ActualSNRdB(h, noiseVar)
	if err != nil {
		return nil, 0, err
	}
	return dst, actual, nil
}

// FrequencyResponse implements scenario.FrequencyResponder: the hybrid
// channel is flat.
func (m *Model) FrequencyResponse(float64) [ofdm.NumSubcarriers]complex128 {
	return channel.FrequencyResponseFrom(m.taps)
}

func corrupt(samples []complex128, amp float64, rng *rand.Rand) {
	for i := range samples {
		samples[i] += complex(amp*rng.NormFloat64(), amp*rng.NormFloat64())
	}
}

func init() {
	scenario.RegisterChannel(Name, func(g scenario.Geometry, params []float64) (scenario.ChannelModel, error) {
		return New(params)
	})
	scenario.Register(scenario.Scenario{
		Name:          Name,
		Description:   "Chen & Leith outdoor hybrid BSC/packet-erasure channel; params: eraseProb, corruptProb, burstPower",
		Channel:       Name,
		ChannelParams: []float64{defaultEraseProb, defaultCorruptProb, defaultBurstPower},
		Embedding:     scenario.DefaultEmbedding,
		ParamsFor:     "channel",
	})
}
