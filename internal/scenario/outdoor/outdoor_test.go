package outdoor

import (
	"math"
	"math/rand"
	"testing"

	"cos/internal/ofdm"
)

// TestNewValidation pins the parameter contract: [q, p, power] or nothing.
func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err != nil {
		t.Fatalf("New(nil): %v", err)
	}
	if _, err := New([]float64{0.2, 0.1, 10}); err != nil {
		t.Fatalf("New(valid): %v", err)
	}
	for _, bad := range [][]float64{
		{0.1},
		{0.1, 0.05},
		{0.1, 0.05, 25, 1},
		{-0.1, 0.05, 25},
		{1.1, 0.05, 25},
		{0.1, -0.05, 25},
		{0.1, 1.05, 25},
		{0.1, 0.05, 0},
		{0.1, 0.05, -1},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%v) accepted", bad)
		}
	}
}

// TestPropagateDeterministic pins the RNG contract: the same seed produces
// byte-identical output, and the realized SNR equals the target (flat
// channel).
func TestPropagateDeterministic(t *testing.T) {
	m, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]complex128, ofdm.PreambleLen+4*ofdm.SymbolLen)
	src := rand.New(rand.NewSource(7))
	for i := range samples {
		samples[i] = complex(src.NormFloat64(), src.NormFloat64())
	}
	run := func() ([]complex128, float64) {
		out, actual, err := m.Propagate(nil, samples, 0, 15, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		cp := make([]complex128, len(out))
		copy(cp, out)
		return cp, actual
	}
	a, actualA := run()
	b, actualB := run()
	if actualA != 15 || actualB != 15 {
		t.Errorf("realized SNR = %v, %v; want 15 (flat channel)", actualA, actualB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical seeds: %v != %v", i, a[i], b[i])
		}
	}
}

// TestErasureCorruptsWholePayload pins the PEC arm: with q=1 every packet's
// payload is blasted while the preamble stays clean for front-end sync.
func TestErasureCorruptsWholePayload(t *testing.T) {
	m, err := New([]float64{1, 0, 25})
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]complex128, ofdm.PreambleLen+2*ofdm.SymbolLen)
	for i := range samples {
		samples[i] = 1
	}
	// Reference: same seed, q=0 — isolates the erasure noise from AWGN.
	clean, err2 := New([]float64{0, 0, 25})
	if err2 != nil {
		t.Fatal(err2)
	}
	got, _, err := m.Propagate(nil, samples, 0, 30, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := clean.Propagate(nil, samples, 0, 30, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ofdm.PreambleLen; i++ {
		if got[i] != ref[i] {
			t.Fatalf("preamble sample %d was corrupted by the erasure arm", i)
		}
	}
	var diff float64
	for i := ofdm.PreambleLen; i < len(got); i++ {
		d := got[i] - ref[i]
		diff += real(d)*real(d) + imag(d)*imag(d)
	}
	if diff == 0 {
		t.Fatal("q=1 erasure left the payload untouched")
	}
}

// TestZeroProbabilitiesAreAWGNOnly pins the degenerate hybrid: q=p=0 is
// plain flat AWGN with finite samples.
func TestZeroProbabilitiesAreAWGNOnly(t *testing.T) {
	m, err := New([]float64{0, 0, 25})
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]complex128, ofdm.PreambleLen+ofdm.SymbolLen)
	out, actual, err := m.Propagate(nil, samples, 0, 20, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if actual != 20 {
		t.Errorf("realized SNR = %v, want 20", actual)
	}
	for i, s := range out {
		if math.IsNaN(real(s)) || math.IsNaN(imag(s)) || math.IsInf(real(s), 0) || math.IsInf(imag(s), 0) {
			t.Fatalf("sample %d is not finite: %v", i, s)
		}
	}
}

// TestFrequencyResponseFlat pins the FrequencyResponder capability: every
// occupied bin has unit gain at all times.
func TestFrequencyResponseFlat(t *testing.T) {
	m, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.FrequencyResponse(0) != m.FrequencyResponse(1) {
		t.Error("flat channel drifted over time")
	}
	h := m.FrequencyResponse(0)
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		bin, err := ofdm.Bin(k)
		if err != nil {
			t.Fatal(err)
		}
		if h[bin] != 1 {
			t.Fatalf("bin %d gain = %v, want 1", k, h[bin])
		}
	}
}
