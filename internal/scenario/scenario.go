// Package scenario is the pluggable world registry: named channel models,
// interferers, and control-bit embedding schemes, composed into Scenario
// values resolvable by name ("default", "pulse", "hybrid-bscpec",
// "ofdm-padding", ...). The link pipeline, the serve job executor, and the
// experiment engine all consume the three small interfaces below instead of
// hard-coding the paper's indoor world, so a new channel or embedding is one
// self-registering package — nothing in the core changes.
//
// Components self-register from init functions; import
// cos/internal/scenario/all (blank) to get every built-in registered.
package scenario

import (
	"fmt"
	"math/rand"

	"cos/internal/channel"
	"cos/internal/ofdm"
	"cos/internal/phy"
)

// Geometry describes the physical placement a channel realization is drawn
// for: the paper's receiver position, whether the receiver walks, and the
// realization variant (independent draw of the same geometry class).
type Geometry struct {
	Position channel.Position
	Mobile   bool
	Variant  int64
}

// ChannelModel propagates baseband samples through one channel realization.
// Implementations own every RNG draw they make from rng — for a fixed draw
// sequence the output is deterministic — and own their tap/scratch storage;
// the returned slice may alias dst and is valid until the next Propagate.
//
// snrDB is the target ground-truth SNR; the second result is the realized
// (channel-sounder) SNR in dB, which equals the target for flat channels.
type ChannelModel interface {
	Propagate(dst, samples []complex128, now, snrDB float64, rng *rand.Rand) ([]complex128, float64, error)
}

// FrequencyResponder is an optional ChannelModel capability: models with a
// well-defined per-subcarrier response (the indoor TDL, flat channels)
// expose it for the experiments that plot or threshold against |H|.
type FrequencyResponder interface {
	FrequencyResponse(now float64) [ofdm.NumSubcarriers]complex128
}

// Interferer injects interference into received samples in place, drawing
// all randomness from rng. It reports how many samples were hit.
// *channel.PulseInterferer satisfies this directly.
type Interferer interface {
	Apply(samples []complex128, rng *rand.Rand) (int, error)
}

// Embedding carries control bits through the PHY alongside a data packet.
// The paper's silence intervals are the "cos-silence" implementation; OFDM
// padding steganography is "ofdm-padding". One instance serves one node
// (transmitter or receiver) and owns its scratch, so steady-state calls do
// not allocate; returned slices alias that scratch and are valid until the
// next call of the same method.
type Embedding interface {
	// Budgeted reports whether the scheme spends the link's silence budget
	// and depends on detectable control subcarriers. Non-budgeted schemes
	// (padding) are capacity-limited only and never pause on NoDetectable
	// feedback.
	Budgeted() bool
	// Align returns the granularity unframed control messages must be a
	// multiple of, given k bits per interval (k for silences, 1 for padding).
	Align(k int) int
	// Capacity returns the maximum control bits one packet of psduLen bytes
	// at mode can carry over nCtrl control subcarriers with k bits per
	// interval (worst-case layout for interval codes).
	Capacity(mode phy.Mode, psduLen, nCtrl, k int) int
	// Embed writes the wire bits into pkt (mutating its grid or coded bits
	// before sample generation) and returns the ground-truth silence mask
	// (nil when the scheme inserts no silences) and the number of silence
	// symbols inserted.
	Embed(pkt *phy.TxPacket, ctrlSCs []int, wire []byte, k int) ([][]bool, int, error)
	// Mask runs receive-side silence detection over the front end and
	// returns the detected mask, or nil when the scheme marks no erasures
	// (the mask feeds erasure Viterbi decoding and EVM exclusion).
	Mask(fe *phy.FrontEnd, mode phy.Mode, ctrlSCs []int, thresholdFactor float64) ([][]bool, error)
	// Extract recovers the wire bits from a decoded packet; mask is the
	// value Mask returned for this packet. The result may be longer than
	// the sent message (trailing noise or keystream bits), callers match
	// prefixes or validate framing.
	Extract(dec *phy.DecodeResult, mask [][]bool, ctrlSCs []int, k int) ([]byte, error)
}

// Default component names: the paper's indoor world.
const (
	// DefaultChannel is the channel model used when a Scenario names none.
	DefaultChannel = "indoor-tdl"
	// DefaultEmbedding is the embedding used when a Scenario names none.
	DefaultEmbedding = "cos-silence"
	// DefaultName is the registered name of the zero-value scenario.
	DefaultName = "default"
)

// Scenario composes a channel model, an optional interferer, a mobility
// flag, and an embedding scheme into one named world. The zero value is the
// default scenario (indoor TDL, no interferer, static, silence intervals).
// Component fields are registry names; empty Channel/Embedding select the
// defaults above, empty Interferer selects none.
type Scenario struct {
	// Name is the registered scenario name ("" for the zero value).
	Name string
	// Description is a one-line summary for listings.
	Description string

	// Channel names the ChannelModel; ChannelParams parameterize it.
	Channel       string
	ChannelParams []float64
	// Interferer names the Interferer ("" = none).
	Interferer       string
	InterfererParams []float64
	// Embedding names the Embedding scheme.
	Embedding       string
	EmbeddingParams []float64
	// Mobility forces the walking-speed channel regardless of link options.
	Mobility bool

	// ParamsFor names the component that user-supplied scenario parameters
	// configure: "channel", "interferer", "embedding", or "" when the
	// scenario takes no parameters.
	ParamsFor string
}

// NewChannel draws the scenario's channel realization for a geometry; the
// scenario's Mobility flag is ORed into the geometry.
func (s Scenario) NewChannel(g Geometry) (ChannelModel, error) {
	name := s.Channel
	if name == "" {
		name = DefaultChannel
	}
	f, err := channelFactory(name)
	if err != nil {
		return nil, err
	}
	g.Mobile = g.Mobile || s.Mobility
	return f(g, s.ChannelParams)
}

// NewInterferer builds the scenario's interferer, or (nil, nil) when the
// scenario has none.
func (s Scenario) NewInterferer() (Interferer, error) {
	if s.Interferer == "" {
		return nil, nil
	}
	f, err := interfererFactory(s.Interferer)
	if err != nil {
		return nil, err
	}
	return f(s.InterfererParams)
}

// NewEmbedding builds a fresh embedding instance (per pipeline node — an
// instance owns scratch and is not safe for concurrent use).
func (s Scenario) NewEmbedding() (Embedding, error) {
	name := s.Embedding
	if name == "" {
		name = DefaultEmbedding
	}
	f, err := embeddingFactory(name)
	if err != nil {
		return nil, err
	}
	return f(s.EmbeddingParams)
}

// Params returns the effective value of the parameter vector user-supplied
// params route into (the preset defaults unless Resolve overrode them), or
// nil for a parameterless scenario.
func (s Scenario) Params() []float64 {
	switch s.ParamsFor {
	case "channel":
		return s.ChannelParams
	case "interferer":
		return s.InterfererParams
	case "embedding":
		return s.EmbeddingParams
	}
	return nil
}

// Interfered composes a channel model with an interferer applied after
// propagation (matching the link pipeline's order: the ground-truth SNR is
// the pre-interference SNR). A FrequencyResponder model keeps exposing its
// response through the composition. A nil intf returns model unchanged.
func Interfered(model ChannelModel, intf Interferer) ChannelModel {
	if intf == nil {
		return model
	}
	if fr, ok := model.(FrequencyResponder); ok {
		return &interferedFR{interfered{model, intf}, fr}
	}
	return &interfered{model, intf}
}

type interfered struct {
	model ChannelModel
	intf  Interferer
}

func (c *interfered) Propagate(dst, samples []complex128, now, snrDB float64, rng *rand.Rand) ([]complex128, float64, error) {
	out, actual, err := c.model.Propagate(dst, samples, now, snrDB, rng)
	if err != nil {
		return nil, 0, err
	}
	if _, err := c.intf.Apply(out, rng); err != nil {
		return nil, 0, err
	}
	return out, actual, nil
}

type interferedFR struct {
	interfered
	fr FrequencyResponder
}

func (c *interferedFR) FrequencyResponse(now float64) [ofdm.NumSubcarriers]complex128 {
	return c.fr.FrequencyResponse(now)
}

// routeParams installs user-supplied params on the component ParamsFor
// names, returning an error for a parameterless scenario.
func (s Scenario) routeParams(params []float64) (Scenario, error) {
	if len(params) == 0 {
		return s, nil
	}
	switch s.ParamsFor {
	case "channel":
		s.ChannelParams = params
	case "interferer":
		s.InterfererParams = params
	case "embedding":
		s.EmbeddingParams = params
	default:
		return s, fmt.Errorf("scenario: %q takes no parameters (got %d)", s.Name, len(params))
	}
	return s, nil
}
