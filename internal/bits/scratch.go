package bits

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Scratch-reuse variants: each writes into a caller-owned destination slice,
// growing it only when its capacity is insufficient, and returns the
// (possibly re-sliced) destination. Destinations must not alias inputs.

func grow(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

// ScrambleInto is Scrambler.Scramble writing into dst.
func (s *Scrambler) ScrambleInto(dst, in []byte) []byte {
	dst = grow(dst, len(in))
	for i, b := range in {
		dst[i] = (b ^ s.Next()) & 1
	}
	return dst
}

// FromBytesInto is FromBytes writing into dst.
func FromBytesInto(dst, data []byte) []byte {
	dst = grow(dst, len(data)*8)
	for j, b := range data {
		for i := 0; i < 8; i++ {
			dst[j*8+i] = (b >> i) & 1
		}
	}
	return dst
}

// ToBytesInto is ToBytes writing into dst.
func ToBytesInto(dst, bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("bits: length %d is not a multiple of 8", len(bits))
	}
	dst = grow(dst, len(bits)/8)
	for i := range dst {
		dst[i] = 0
	}
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("bits: element %d = %d is not a bit", i, b)
		}
		dst[i/8] |= b << (i % 8)
	}
	return dst, nil
}

// AppendFCSInto is AppendFCS writing into dst.
func AppendFCSInto(dst, data []byte) []byte {
	dst = grow(dst, len(data)+FCSLen)
	copy(dst, data)
	binary.LittleEndian.PutUint32(dst[len(data):], crc32.ChecksumIEEE(data))
	return dst
}
