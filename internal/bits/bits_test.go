package bits

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromBytesToBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		b := FromBytes(data)
		back, err := ToBytes(b)
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromBytesLSBFirst(t *testing.T) {
	got := FromBytes([]byte{0x01, 0x80})
	want := []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	if !Equal(got, want) {
		t.Errorf("FromBytes = %v, want %v", got, want)
	}
}

func TestToBytesErrors(t *testing.T) {
	if _, err := ToBytes(make([]byte, 7)); err == nil {
		t.Error("ToBytes of non-multiple-of-8 should error")
	}
	if _, err := ToBytes([]byte{0, 1, 2, 0, 0, 0, 0, 0}); err == nil {
		t.Error("ToBytes of non-bit element should error")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a := []byte{0, 1, 1, 0}
	b := []byte{0, 1, 0, 0}
	if Equal(a, b) {
		t.Error("Equal of differing slices")
	}
	if !Equal(a, a) {
		t.Error("Equal of identical slices")
	}
	if got := Diff(a, b); got != 1 {
		t.Errorf("Diff = %d, want 1", got)
	}
	if got := Diff(a, a[:2]); got != 2 {
		t.Errorf("Diff with length mismatch = %d, want 2", got)
	}
	if got := Diff(nil, nil); got != 0 {
		t.Errorf("Diff(nil,nil) = %d, want 0", got)
	}
}

func TestPackUnpackUint(t *testing.T) {
	for _, c := range []struct {
		v uint64
		n int
	}{{0, 1}, {1, 1}, {5, 4}, {15, 4}, {0xDEADBEEF, 32}, {1<<63 | 7, 64}} {
		b := PackUint(c.v, c.n)
		if len(b) != c.n {
			t.Fatalf("PackUint(%v,%d) length %d", c.v, c.n, len(b))
		}
		got, err := UnpackUint(b)
		if err != nil {
			t.Fatal(err)
		}
		mask := ^uint64(0)
		if c.n < 64 {
			mask = (1 << c.n) - 1
		}
		if got != c.v&mask {
			t.Errorf("roundtrip(%v,%d) = %v", c.v, c.n, got)
		}
	}
	if _, err := UnpackUint(make([]byte, 65)); err == nil {
		t.Error("UnpackUint of 65 bits should error")
	}
	if _, err := UnpackUint([]byte{2}); err == nil {
		t.Error("UnpackUint of non-bit should error")
	}
}

func TestScramblerSelfInverse(t *testing.T) {
	f := func(data []byte, seed byte) bool {
		in := FromBytes(data)
		s1 := NewScrambler(seed)
		s2 := NewScrambler(seed)
		return Equal(s2.Scramble(s1.Scramble(in)), in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScramblerKnownSequence(t *testing.T) {
	// 802.11a 17.3.5.4: with the all-ones initial state the scrambler
	// generates a 127-bit repeating sequence beginning
	// 00001110 11110010 11001001 ...
	s := NewScrambler(0x7F)
	want := []byte{
		0, 0, 0, 0, 1, 1, 1, 0,
		1, 1, 1, 1, 0, 0, 1, 0,
		1, 1, 0, 0, 1, 0, 0, 1,
	}
	got := s.Sequence(len(want))
	if !Equal(got, want) {
		t.Errorf("scrambler sequence = %v, want %v", got, want)
	}
}

func TestScramblerPeriod127(t *testing.T) {
	s := NewScrambler(0x7F)
	seq := s.Sequence(254)
	if !Equal(seq[:127], seq[127:]) {
		t.Error("scrambler sequence does not repeat with period 127")
	}
	// All 127 non-zero states must be visited exactly once: the sequence is
	// maximal length, so within one period there are 64 ones and 63 zeros.
	ones := 0
	for _, b := range seq[:127] {
		ones += int(b)
	}
	if ones != 64 {
		t.Errorf("ones in one period = %d, want 64", ones)
	}
}

func TestScramblerZeroSeedReplaced(t *testing.T) {
	s := NewScrambler(0)
	seq := s.Sequence(127)
	any := false
	for _, b := range seq {
		if b != 0 {
			any = true
			break
		}
	}
	if !any {
		t.Error("zero seed should be replaced to avoid an all-zero sequence")
	}
}

func TestFCSRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		framed := AppendFCS(data)
		payload, ok := CheckFCS(framed)
		return ok && bytes.Equal(payload, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFCSDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 64)
	rng.Read(data)
	framed := AppendFCS(data)
	for trial := 0; trial < 100; trial++ {
		corrupted := make([]byte, len(framed))
		copy(corrupted, framed)
		pos := rng.Intn(len(corrupted))
		bit := byte(1) << rng.Intn(8)
		corrupted[pos] ^= bit
		if _, ok := CheckFCS(corrupted); ok {
			t.Fatalf("single-bit corruption at byte %d undetected", pos)
		}
	}
}

func TestFCSTooShort(t *testing.T) {
	if _, ok := CheckFCS([]byte{1, 2, 3}); ok {
		t.Error("CheckFCS of a 3-byte frame should fail")
	}
	// A 4-byte frame is an empty payload plus FCS; valid only if it is the
	// CRC of the empty string.
	if _, ok := CheckFCS(AppendFCS(nil)); !ok {
		t.Error("CheckFCS of FCS-only frame with valid CRC should pass")
	}
}
