package bits

import (
	"encoding/binary"
	"hash/crc32"
)

// FCSLen is the length in bytes of the 802.11 frame check sequence.
const FCSLen = 4

// AppendFCS returns data with the IEEE CRC-32 frame check sequence appended
// (little-endian, per 802.11 octet ordering).
func AppendFCS(data []byte) []byte {
	out := make([]byte, len(data)+FCSLen)
	copy(out, data)
	binary.LittleEndian.PutUint32(out[len(data):], crc32.ChecksumIEEE(data))
	return out
}

// CheckFCS verifies the trailing frame check sequence of frame and returns
// the payload with the FCS stripped. ok is false when the frame is shorter
// than an FCS or the checksum does not match.
func CheckFCS(frame []byte) (payload []byte, ok bool) {
	if len(frame) < FCSLen {
		return nil, false
	}
	body := frame[:len(frame)-FCSLen]
	want := binary.LittleEndian.Uint32(frame[len(frame)-FCSLen:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, false
	}
	return body, true
}
