package bits

// Scrambler implements the IEEE 802.11 frame-synchronous data scrambler
// with generator polynomial S(x) = x^7 + x^4 + 1 (17.3.5.4).
//
// The scrambler is self-inverse: running the same seed over scrambled data
// descrambles it.
type Scrambler struct {
	state byte // 7-bit shift register, bit 0 = x^1 stage
}

// NewScrambler returns a scrambler initialized with the given 7-bit seed.
// A zero seed would emit a constant zero sequence, so it is replaced by the
// standard's commonly used all-ones state.
func NewScrambler(seed byte) *Scrambler {
	seed &= 0x7F
	if seed == 0 {
		seed = 0x7F
	}
	return &Scrambler{state: seed}
}

// Next returns the next scrambling-sequence bit and advances the register.
func (s *Scrambler) Next() byte {
	// Feedback is x^7 XOR x^4: bits 6 and 3 of the register.
	fb := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = ((s.state << 1) | fb) & 0x7F
	return fb
}

// Scramble XORs the scrambling sequence over in and returns the result as a
// new slice. in must be a bit slice (elements 0 or 1).
func (s *Scrambler) Scramble(in []byte) []byte {
	out := make([]byte, len(in))
	for i, b := range in {
		out[i] = (b ^ s.Next()) & 1
	}
	return out
}

// Sequence returns the next n scrambling bits as a bit slice. It is used to
// generate the 127-bit pilot polarity sequence.
func (s *Scrambler) Sequence(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}
