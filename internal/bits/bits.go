// Package bits provides bit-level utilities used throughout the 802.11a PHY:
// byte/bit conversion in transmission order, the 802.11 data scrambler, and
// the 32-bit frame check sequence.
//
// Throughout this package (and the PHY) a "bit slice" is a []byte whose
// elements are each 0 or 1. This representation trades memory for clarity
// and makes interleaving, puncturing, and erasure bookkeeping trivial.
package bits

import "fmt"

// FromBytes expands data into one bit per element, LSB first within each
// byte, matching the 802.11 convention that the least-significant bit of
// each octet is transmitted first.
func FromBytes(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			out = append(out, (b>>i)&1)
		}
	}
	return out
}

// ToBytes packs a bit slice (LSB first per octet) back into bytes.
// len(bits) must be a multiple of 8.
func ToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("bits: length %d is not a multiple of 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("bits: element %d = %d is not a bit", i, b)
		}
		out[i/8] |= b << (i % 8)
	}
	return out, nil
}

// Equal reports whether two bit slices have identical length and contents.
func Equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff returns the number of positions at which a and b differ. Slices of
// unequal length compare over the shorter prefix, with the length difference
// added (every overhanging bit counts as an error).
func Diff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := len(a) + len(b) - 2*n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// PackUint encodes the low n bits of v into a bit slice, LSB first.
func PackUint(v uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = byte((v >> i) & 1)
	}
	return out
}

// UnpackUint decodes a bit slice (LSB first) into an unsigned integer.
// len(b) must be at most 64.
func UnpackUint(b []byte) (uint64, error) {
	if len(b) > 64 {
		return 0, fmt.Errorf("bits: cannot unpack %d bits into uint64", len(b))
	}
	var v uint64
	for i, bit := range b {
		if bit > 1 {
			return 0, fmt.Errorf("bits: element %d = %d is not a bit", i, bit)
		}
		v |= uint64(bit) << i
	}
	return v, nil
}
