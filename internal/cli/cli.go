// Package cli collects the boot plumbing every cos binary shares: the
// SIGINT/SIGTERM cancellation context and the optional obs HTTP listener
// plus periodic stats line behind the -metrics-addr/-stats flag pair.
// Centralizing it keeps the five CLIs' signal and observability behaviour
// identical instead of drifting copy by copy.
//
// Typical use:
//
//	addr, stats := cli.ObsFlags(flag.CommandLine)
//	flag.Parse()
//	app, err := cli.Boot(*addr, *stats, os.Stderr)
//	if err != nil { ... }
//	defer app.Close()
//	... use app.Context() ...
//	if cli.Interrupted(err) { os.Exit(cli.ExitInterrupted) }
package cli

import (
	"context"
	"errors"
	"flag"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cos/internal/obs"
	"cos/internal/obs/obshttp"
)

// ExitInterrupted is the conventional exit status for a run cut short by
// SIGINT/SIGTERM (128 + SIGINT).
const ExitInterrupted = 130

// ObsFlags registers the observability flag pair every binary exposes and
// returns pointers to their values; call before fs is parsed.
func ObsFlags(fs *flag.FlagSet) (metricsAddr *string, statsEvery *time.Duration) {
	metricsAddr = fs.String("metrics-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof/ on this address (e.g. :8080)")
	statsEvery = fs.Duration("stats", 0,
		"print a metrics stats line to stderr at this interval (0 = off)")
	return metricsAddr, statsEvery
}

// App is one binary's booted runtime: a signal-cancelled context plus the
// obs listener/stats logger, torn down together by Close.
type App struct {
	ctx         context.Context
	stopSig     context.CancelFunc
	stopObs     func()
	stopRuntime func()
}

// Boot installs SIGINT/SIGTERM cancellation and, when metricsAddr or
// statsEvery are set, starts the obs HTTP listener and stats logger on the
// default registry (logging the bound address to logw so ":0" is
// discoverable), plus the runtime self-metrics sampler (goroutines, heap,
// GC pauses) so every scraping or stats-printing daemon reports its own
// health alongside job metrics.
func Boot(metricsAddr string, statsEvery time.Duration, logw io.Writer) (*App, error) {
	stopObs, err := obshttp.Expose(metricsAddr, statsEvery, logw)
	if err != nil {
		return nil, err
	}
	var stopRuntime func()
	if metricsAddr != "" || statsEvery > 0 {
		stopRuntime = obs.StartRuntimeMetrics(obs.Default(), 0)
	}
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	return &App{ctx: ctx, stopSig: stopSig, stopObs: stopObs, stopRuntime: stopRuntime}, nil
}

// Context returns the context cancelled by SIGINT/SIGTERM.
func (a *App) Context() context.Context { return a.ctx }

// Close restores signal handling and shuts the obs listener down. Safe to
// call more than once.
func (a *App) Close() {
	if a.stopSig != nil {
		a.stopSig()
		a.stopSig = nil
	}
	if a.stopRuntime != nil {
		a.stopRuntime()
		a.stopRuntime = nil
	}
	if a.stopObs != nil {
		a.stopObs()
		a.stopObs = nil
	}
}

// Interrupted reports whether err is the context cancellation a signal
// produces, i.e. the run should exit with ExitInterrupted.
func Interrupted(err error) bool { return errors.Is(err, context.Canceled) }
