package cli

import (
	"flag"

	"cos/internal/scenario"
)

// ScenarioFlags registers the scenario flag pair shared by cos-sim and
// cos-figures — one definition so the two binaries' help text and
// semantics cannot drift. Call before fs is parsed.
func ScenarioFlags(fs *flag.FlagSet) (ref *string, list *bool) {
	ref = fs.String("scenario", "",
		"scenario preset reference, name[:p1,p2,...] (see -list-scenarios)")
	list = fs.Bool("list-scenarios", false,
		"list the registered scenario presets and exit")
	return ref, list
}

// ParseScenario resolves the -scenario flag value: empty means "no
// override" and parses to the zero Ref; anything else must name a
// registered preset. Binaries fail fast on the error (exit 2) instead of
// discovering a bad reference deep inside the first task.
func ParseScenario(ref string) (scenario.Ref, error) {
	if ref == "" {
		return scenario.Ref{}, nil
	}
	return scenario.ParseRef(ref)
}
