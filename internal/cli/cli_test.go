package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestObsFlagsRegisterThePair(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	addr, stats := ObsFlags(fs)
	if err := fs.Parse([]string{"-metrics-addr", ":9999", "-stats", "5s"}); err != nil {
		t.Fatal(err)
	}
	if *addr != ":9999" || *stats != 5*time.Second {
		t.Fatalf("parsed flags = %q, %v", *addr, *stats)
	}
}

func TestBootWithoutObsAndIdempotentClose(t *testing.T) {
	app, err := Boot("", 0, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Context().Err(); err != nil {
		t.Fatalf("fresh context already cancelled: %v", err)
	}
	app.Close()
	app.Close() // must be safe to call twice (deferred + explicit)
}

func TestBootServesMetrics(t *testing.T) {
	var log strings.Builder
	app, err := Boot("127.0.0.1:0", 0, &log)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	// obshttp logs the bound URL ("... on http://127.0.0.1:PORT") so ":0"
	// is discoverable.
	line := strings.TrimSpace(log.String())
	i := strings.LastIndex(line, " ")
	if i < 0 || !strings.HasPrefix(line[i+1:], "http://") {
		t.Fatalf("obs listener logged no address: %q", line)
	}
	url := line[i+1:]
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET %s/metrics: %v", url, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
}

func TestBootContextCancelsOnSignal(t *testing.T) {
	app, err := Boot("", 0, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-app.Context().Done():
	case <-time.After(10 * time.Second):
		t.Fatal("context not cancelled after SIGTERM")
	}
	if !Interrupted(app.Context().Err()) {
		t.Fatalf("Interrupted(%v) = false after signal", app.Context().Err())
	}
}

func TestInterruptedClassification(t *testing.T) {
	if Interrupted(nil) {
		t.Error("Interrupted(nil)")
	}
	if Interrupted(context.DeadlineExceeded) {
		t.Error("deadline exceeded is not an interrupt")
	}
	if !Interrupted(fmt.Errorf("wrapped: %w", context.Canceled)) {
		t.Error("wrapped context.Canceled should count as interrupted")
	}
}
