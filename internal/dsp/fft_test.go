package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is an O(N^2) reference implementation used to validate the FFT.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func approxEqual(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randComplexSlice(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128} {
		x := randComplexSlice(rng, n)
		got, err := FFT(x)
		if err != nil {
			t.Fatalf("FFT(n=%d): %v", n, err)
		}
		want := naiveDFT(x)
		if !approxEqual(got, want, 1e-9*float64(n)) {
			t.Errorf("FFT(n=%d) disagrees with naive DFT", n)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 12, 63, 65} {
		x := make([]complex128, n)
		if _, err := FFT(x); err == nil {
			t.Errorf("FFT(n=%d): want error, got nil", n)
		}
		if _, err := IFFT(x); err == nil {
			t.Errorf("IFFT(n=%d): want error, got nil", n)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := randComplexSlice(rng, n)
		y, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IFFT(y)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqual(x, back, 1e-9*float64(n)) {
			t.Errorf("IFFT(FFT(x)) != x for n=%d", n)
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randComplexSlice(rng, 64)
	orig := make([]complex128, len(x))
	copy(orig, x)
	if _, err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if !approxEqual(x, orig, 0) {
		t.Error("FFT mutated its input")
	}
}

func TestFFTImpulse(t *testing.T) {
	// DFT of a unit impulse is all-ones.
	x := make([]complex128, 64)
	x[0] = 1
	y, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin k0 transforms to N at bin k0, 0 elsewhere.
	const n, k0 = 64, 5
	x := make([]complex128, n)
	for t0 := 0; t0 < n; t0++ {
		x[t0] = cmplx.Exp(complex(0, 2*math.Pi*k0*float64(t0)/n))
	}
	y, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range y {
		want := complex128(0)
		if k == k0 {
			want = complex(n, 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Fatalf("tone FFT bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randComplexSlice(r, 64)
		b := randComplexSlice(r, 64)
		alpha := complex(r.NormFloat64(), r.NormFloat64())
		mix := make([]complex128, 64)
		for i := range mix {
			mix[i] = a[i] + alpha*b[i]
		}
		fa, _ := FFT(a)
		fb, _ := FFT(b)
		fmix, _ := FFT(mix)
		want := make([]complex128, 64)
		for i := range want {
			want[i] = fa[i] + alpha*fb[i]
		}
		return approxEqual(fmix, want, 1e-7)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval: sum |x|^2 == (1/N) sum |X|^2.
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randComplexSlice(r, 64)
		y, _ := FFT(x)
		return math.Abs(Energy(x)-Energy(y)/64) < 1e-7
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	cases := map[int]bool{
		-4: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 63: false, 64: true, 1024: true, 1000: false,
	}
	for n, want := range cases {
		if got := IsPowerOfTwo(n); got != want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", n, got, want)
		}
	}
}
