package dsp

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, v := range xs {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CDFPoint is one (value, cumulative probability) pair of an empirical CDF.
type CDFPoint struct {
	Value float64
	Prob  float64
}

// EmpiricalCDF builds the empirical cumulative distribution function of xs.
// The result is sorted by value; Prob at each point is the fraction of
// samples less than or equal to that value.
func EmpiricalCDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Prob: float64(i+1) / n}
	}
	return out
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using nearest-rank
// interpolation. It returns an error for an empty input or out-of-range q.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("dsp: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("dsp: quantile %v out of range [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx], nil
}

// Running accumulates streaming mean/min/max statistics without retaining
// samples. The zero value is ready to use.
type Running struct {
	n    int
	sum  float64
	min  float64
	max  float64
	sumS float64
}

// Add records one sample.
func (r *Running) Add(v float64) {
	if r.n == 0 || v < r.min {
		r.min = v
	}
	if r.n == 0 || v > r.max {
		r.max = v
	}
	r.n++
	r.sum += v
	r.sumS += v * v
}

// N returns the number of recorded samples.
func (r *Running) N() int { return r.n }

// Mean returns the mean of recorded samples, or 0 if none were recorded.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Min returns the smallest recorded sample, or 0 if none were recorded.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest recorded sample, or 0 if none were recorded.
func (r *Running) Max() float64 { return r.max }

// StdDev returns the population standard deviation of recorded samples.
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return 0
	}
	m := r.Mean()
	v := r.sumS/float64(r.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
