package dsp

import (
	"math"
	"math/cmplx"
)

// Power returns the average power (mean squared magnitude) of x.
// It returns 0 for an empty slice.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return sum / float64(len(x))
}

// Energy returns the total energy (sum of squared magnitudes) of x.
func Energy(x []complex128) float64 {
	var sum float64
	for _, v := range x {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return sum
}

// MagSq returns the squared magnitude of v. It is cheaper than
// cmplx.Abs(v)*cmplx.Abs(v) and never produces intermediate square roots.
func MagSq(v complex128) float64 {
	return real(v)*real(v) + imag(v)*imag(v)
}

// Abs returns the magnitude of v.
func Abs(v complex128) float64 {
	return cmplx.Abs(v)
}

// DB converts a linear power ratio to decibels. Non-positive inputs map to
// -Inf, mirroring the mathematical limit.
func DB(linear float64) float64 {
	if linear <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(linear)
}

// Linear converts a decibel power ratio to linear scale.
func Linear(db float64) float64 {
	return math.Pow(10, db/10)
}

// ScaleTo returns a copy of x scaled so its average power equals target.
// If x has zero power the copy is returned unchanged.
func ScaleTo(x []complex128, target float64) []complex128 {
	out := make([]complex128, len(x))
	p := Power(x)
	if p <= 0 {
		copy(out, x)
		return out
	}
	g := complex(math.Sqrt(target/p), 0)
	for i, v := range x {
		out[i] = v * g
	}
	return out
}
