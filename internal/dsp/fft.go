// Package dsp provides the signal-processing primitives the 802.11a PHY
// simulation is built on: a radix-2 FFT/IFFT, power and decibel helpers, and
// small statistics utilities.
//
// Everything here is implemented from scratch on top of the standard library
// so the repository has no external dependencies.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the discrete Fourier transform of x using an iterative
// radix-2 decimation-in-time algorithm and returns a newly allocated result.
// The convention matches the paper's Eq. (4):
//
//	X[k] = sum_{n=0}^{N-1} x[n] * exp(-j*2*pi*n*k/N)
//
// len(x) must be a positive power of two.
func FFT(x []complex128) ([]complex128, error) {
	out := make([]complex128, len(x))
	copy(out, x)
	if err := FFTInPlace(out); err != nil {
		return nil, err
	}
	return out, nil
}

// IFFT computes the inverse discrete Fourier transform of x and returns a
// newly allocated result. The convention matches the paper's Eq. (3):
//
//	x[n] = (1/N) * sum_{k=0}^{N-1} X[k] * exp(+j*2*pi*n*k/N)
//
// len(x) must be a positive power of two.
func IFFT(x []complex128) ([]complex128, error) {
	out := make([]complex128, len(x))
	copy(out, x)
	if err := IFFTInPlace(out); err != nil {
		return nil, err
	}
	return out, nil
}

// FFTInto computes the forward DFT of x into dst, leaving x unchanged.
// len(dst) must equal len(x), which must be a positive power of two; dst
// and x must not overlap unless they are the same slice.
func FFTInto(dst, x []complex128) error {
	if len(dst) != len(x) {
		return fmt.Errorf("dsp: FFT destination length %d != input length %d", len(dst), len(x))
	}
	if len(x) > 0 && &dst[0] != &x[0] {
		copy(dst, x)
	}
	return FFTInPlace(dst)
}

// IFFTInto computes the inverse DFT of x into dst, leaving x unchanged.
// Same constraints as FFTInto.
func IFFTInto(dst, x []complex128) error {
	if len(dst) != len(x) {
		return fmt.Errorf("dsp: IFFT destination length %d != input length %d", len(dst), len(x))
	}
	if len(x) > 0 && &dst[0] != &x[0] {
		copy(dst, x)
	}
	return IFFTInPlace(dst)
}

// FFTInPlace computes the forward DFT of x in place.
// len(x) must be a positive power of two.
func FFTInPlace(x []complex128) error {
	return transform(x, false)
}

// IFFTInPlace computes the inverse DFT of x in place, including the 1/N
// scaling. len(x) must be a positive power of two.
func IFFTInPlace(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= scale
	}
	return nil
}

// transform runs the shared radix-2 butterfly schedule. inverse selects the
// twiddle-factor sign; scaling for the inverse transform is applied by the
// caller.
func transform(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("dsp: FFT length %d is not a positive power of two", n)
	}
	if n == 1 {
		return nil
	}

	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		// w = exp(j*step) advanced incrementally per butterfly column.
		wStep := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}
