package dsp

import (
	"math"
	"testing"
)

func TestPowerAndEnergy(t *testing.T) {
	x := []complex128{1, 1i, -1, -1i}
	if got := Power(x); math.Abs(got-1) > 1e-12 {
		t.Errorf("Power = %v, want 1", got)
	}
	if got := Energy(x); math.Abs(got-4) > 1e-12 {
		t.Errorf("Energy = %v, want 4", got)
	}
	if got := Power(nil); got != 0 {
		t.Errorf("Power(nil) = %v, want 0", got)
	}
}

func TestMagSq(t *testing.T) {
	if got := MagSq(3 + 4i); math.Abs(got-25) > 1e-12 {
		t.Errorf("MagSq(3+4i) = %v, want 25", got)
	}
	if got := Abs(3 + 4i); math.Abs(got-5) > 1e-12 {
		t.Errorf("Abs(3+4i) = %v, want 5", got)
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, 0, 3, 10, 25.7} {
		if got := DB(Linear(db)); math.Abs(got-db) > 1e-9 {
			t.Errorf("DB(Linear(%v)) = %v", db, got)
		}
	}
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be -Inf")
	}
	if !math.IsInf(DB(-1), -1) {
		t.Error("DB(-1) should be -Inf")
	}
}

func TestScaleTo(t *testing.T) {
	x := []complex128{2, 2i, -2, -2i}
	y := ScaleTo(x, 1)
	if got := Power(y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Power after ScaleTo = %v, want 1", got)
	}
	// Original must be untouched.
	if got := Power(x); math.Abs(got-4) > 1e-12 {
		t.Errorf("ScaleTo mutated input: power = %v", got)
	}
	// Zero signal passes through.
	z := ScaleTo([]complex128{0, 0}, 5)
	if Power(z) != 0 {
		t.Error("ScaleTo of zero signal should stay zero")
	}
}
