package dsp

import (
	"math"
	"testing"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestEmpiricalCDF(t *testing.T) {
	pts := EmpiricalCDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d, want 3", len(pts))
	}
	wantVals := []float64{1, 2, 3}
	wantProbs := []float64{1.0 / 3, 2.0 / 3, 1}
	for i, p := range pts {
		if p.Value != wantVals[i] || math.Abs(p.Prob-wantProbs[i]) > 1e-12 {
			t.Errorf("point %d = %+v, want {%v %v}", i, p, wantVals[i], wantProbs[i])
		}
	}
	if EmpiricalCDF(nil) != nil {
		t.Error("EmpiricalCDF(nil) should be nil")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		q    float64
		want float64
	}{{0, 10}, {0.2, 10}, {0.5, 30}, {0.9, 50}, {1, 50}}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile of empty slice should error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile out of range should error")
	}
}

func TestRunningStats(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 {
		t.Error("zero-value Running should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 {
		t.Errorf("N = %d, want 8", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if math.Abs(r.StdDev()-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", r.StdDev())
	}
}
