package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestRuntimeMetricsSample: the first sample is synchronous, the gauges
// reflect real runtime state, and stop is idempotent.
func TestRuntimeMetricsSample(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeMetrics(r, time.Hour) // ticker never fires; test the sync sample
	defer stop()

	snap := r.Snapshot()
	if g := snap["cos_runtime_goroutines"]; g < 1 {
		t.Fatalf("goroutines = %v, want >= 1", g)
	}
	if h := snap["cos_runtime_heap_alloc_bytes"]; h <= 0 {
		t.Fatalf("heap_alloc_bytes = %v, want > 0", h)
	}
	if o := snap["cos_runtime_heap_objects"]; o <= 0 {
		t.Fatalf("heap_objects = %v, want > 0", o)
	}
	if n := snap["cos_runtime_next_gc_bytes"]; n <= 0 {
		t.Fatalf("next_gc_bytes = %v, want > 0", n)
	}
	if u, ok := snap["cos_runtime_uptime_seconds"]; !ok || u < 0 {
		t.Fatalf("uptime_seconds = %v, want >= 0", u)
	}

	stop()
	stop() // idempotent
}

// TestRuntimeMetricsGCPauses: forced GC cycles land in the pause histogram
// and the cycle counter.
func TestRuntimeMetricsGCPauses(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeMetrics(r, time.Hour)
	defer stop()

	before := r.Snapshot()["cos_runtime_gc_total"]
	runtime.GC()
	runtime.GC()
	// Resample synchronously rather than waiting for the ticker.
	stop2 := StartRuntimeMetrics(r, time.Hour)
	defer stop2()

	snap := r.Snapshot()
	if got := snap["cos_runtime_gc_total"]; got < before+2 {
		t.Fatalf("gc_total = %v, want >= %v", got, before+2)
	}
	if n := snap["cos_runtime_gc_pause_seconds_count"]; n < 2 {
		t.Fatalf("gc_pause_seconds_count = %v, want >= 2", n)
	}
}

// TestRuntimeMetricsProm: the runtime metrics render in the Prometheus
// exposition alongside everything else.
func TestRuntimeMetricsProm(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeMetrics(r, time.Hour)
	defer stop()

	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	for _, name := range []string{
		"cos_runtime_goroutines",
		"cos_runtime_heap_alloc_bytes",
		"cos_runtime_gc_pause_seconds_bucket",
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("prom exposition missing %s:\n%s", name, out)
		}
	}
}
