package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// SpanSet times a fixed set of pipeline stages. It is the flight
// recorder's clock: each stage owns a latency histogram in the registry
// (name "<prefix>_<stage>_seconds") plus a per-exchange nanosecond
// accumulator that callers drain into their event stream (the trace
// schema's stage_ns map).
//
// The hot path — StartSpan then Span.End — allocates nothing: a Span is a
// small value, time.Now carries Go's monotonic reading, and both the
// histogram observation and the accumulator update are atomic adds. A
// SpanSet is safe for concurrent use; links that share a registry share
// the histograms (same metric names resolve to the same Histogram) while
// each link drains only its own accumulators.
//
// Nesting is free-form: starting a stage while another is open simply
// accumulates both intervals into their own slots, so an outer
// whole-exchange span can bracket inner per-stage spans.
type SpanSet struct {
	stages []string
	hists  []*Histogram
	ns     []atomic.Int64
}

// NewSpanSet registers one latency histogram per stage under
// "<prefix>_<stage>_seconds" and returns the set. Stage indices passed to
// StartSpan are positions in the stages slice.
func NewSpanSet(r *Registry, prefix, help string, stages []string) *SpanSet {
	if len(stages) == 0 {
		panic("obs: SpanSet needs at least one stage")
	}
	ss := &SpanSet{
		stages: append([]string(nil), stages...),
		hists:  make([]*Histogram, len(stages)),
		ns:     make([]atomic.Int64, len(stages)),
	}
	for i, st := range stages {
		ss.hists[i] = r.Histogram(prefix+"_"+st+"_seconds",
			fmt.Sprintf("%s (stage %q).", help, st), nil)
	}
	return ss
}

// Len returns the number of stages.
func (ss *SpanSet) Len() int { return len(ss.stages) }

// StageName returns the name of stage i.
func (ss *SpanSet) StageName(i int) string { return ss.stages[i] }

// Span is one open timing interval; close it with End. The zero Span is
// inert: End on it records nothing, so conditional instrumentation can
// keep a Span variable without branching at the close site.
type Span struct {
	ss    *SpanSet
	stage int32
	start time.Time
}

// StartSpan opens a span over stage i (an index into the constructor's
// stages). The returned Span must be closed with End; spans may nest and
// interleave freely.
func (ss *SpanSet) StartSpan(i int) Span {
	if i < 0 || i >= len(ss.stages) {
		panic(fmt.Sprintf("obs: span stage %d out of range [0,%d)", i, len(ss.stages)))
	}
	return Span{ss: ss, stage: int32(i), start: time.Now()}
}

// End closes the span: the elapsed monotonic time lands in the stage's
// latency histogram and its per-exchange accumulator. End returns the
// elapsed duration and is a no-op on the zero Span.
func (sp Span) End() time.Duration {
	if sp.ss == nil {
		return 0
	}
	d := time.Since(sp.start)
	sp.ss.hists[sp.stage].Observe(d.Seconds())
	sp.ss.ns[sp.stage].Add(d.Nanoseconds())
	return d
}

// Drain copies the accumulated nanoseconds of every stage into dst
// (len >= Len) and zeroes the accumulators, starting the next exchange's
// window. Histograms are unaffected — they aggregate across exchanges.
func (ss *SpanSet) Drain(dst []int64) {
	for i := range ss.ns {
		dst[i] = ss.ns[i].Swap(0)
	}
}
