package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanSetRecordsStages(t *testing.T) {
	r := NewRegistry()
	ss := NewSpanSet(r, "test_pipeline", "Test stage latency", []string{"tx", "rx"})
	if ss.Len() != 2 || ss.StageName(1) != "rx" {
		t.Fatalf("stage bookkeeping: len=%d name1=%q", ss.Len(), ss.StageName(1))
	}
	sp := ss.StartSpan(0)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Errorf("span elapsed %v, slept 1ms", d)
	}
	ns := make([]int64, 2)
	ss.Drain(ns)
	if ns[0] < int64(time.Millisecond) || ns[1] != 0 {
		t.Errorf("drained ns = %v", ns)
	}
	// Drain zeroes the per-exchange window but not the histograms.
	ss.Drain(ns)
	if ns[0] != 0 {
		t.Errorf("second drain not zeroed: %v", ns)
	}
	snap := r.Snapshot()
	if snap["test_pipeline_tx_seconds_count"] != 1 {
		t.Errorf("histogram count = %v, want 1", snap["test_pipeline_tx_seconds_count"])
	}
	if snap["test_pipeline_rx_seconds_count"] != 0 {
		t.Errorf("untouched stage observed: %v", snap["test_pipeline_rx_seconds_count"])
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	ss := NewSpanSet(r, "nest", "Nesting test", []string{"outer", "inner"})
	outer := ss.StartSpan(0)
	inner := ss.StartSpan(1)
	time.Sleep(2 * time.Millisecond)
	inner.End()
	outer.End()
	ns := make([]int64, 2)
	ss.Drain(ns)
	if ns[0] < ns[1] {
		t.Errorf("outer span (%dns) should cover the nested inner span (%dns)", ns[0], ns[1])
	}
	if ns[1] < int64(2*time.Millisecond) {
		t.Errorf("inner span %dns, slept 2ms", ns[1])
	}
}

func TestZeroSpanIsInert(t *testing.T) {
	var sp Span
	if d := sp.End(); d != 0 {
		t.Errorf("zero span End = %v", d)
	}
}

// TestSpanSetConcurrent drives one shared SpanSet from many goroutines
// (the shared-registry shape: concurrent links timing the same stages);
// run under -race via make ci.
func TestSpanSetConcurrent(t *testing.T) {
	r := NewRegistry()
	ss := NewSpanSet(r, "conc", "Concurrency test", []string{"a", "b", "c"})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := ss.StartSpan((w + i) % 3)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	total := snap["conc_a_seconds_count"] + snap["conc_b_seconds_count"] + snap["conc_c_seconds_count"]
	if total != workers*perWorker {
		t.Errorf("observations = %v, want %d", total, workers*perWorker)
	}
}

// TestSpanHotPathAllocs pins the allocation-free contract of
// StartSpan/End: the flight recorder rides the per-packet hot path.
func TestSpanHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	ss := NewSpanSet(r, "alloc", "Alloc test", []string{"s"})
	ns := make([]int64, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := ss.StartSpan(0)
		sp.End()
		ss.Drain(ns)
	})
	if allocs != 0 {
		t.Errorf("span hot path allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSpanSetPanicsOnBadStage(t *testing.T) {
	r := NewRegistry()
	ss := NewSpanSet(r, "bad", "Bad stage test", []string{"s"})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range stage should panic")
		}
	}()
	ss.StartSpan(1)
}
