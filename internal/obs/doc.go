// Package obs is the repository's zero-dependency metrics and
// instrumentation layer: always-on counters, gauges, and bounded
// histograms over the hot CoS pipeline, exposed three ways.
//
//   - Programmatically: Snapshot() flattens every metric of the default
//     registry into a map[string]float64, so experiments and tests can
//     assert on detector error counts, EVD erasure load, or rate-table
//     transitions after a session.
//   - Prometheus text format: Registry.WriteProm, served on /metrics by
//     the obshttp subpackage.
//   - expvar-compatible JSON: the default registry is published as the
//     "cos" expvar, served on /debug/vars by obshttp (alongside the
//     standard memstats and cmdline vars).
//
// obshttp.Serve also mounts net/http/pprof on /debug/pprof/, so every
// CLI that passes -metrics-addr gets CPU/heap/block profiling for free.
// The HTTP exposition lives in the obshttp subpackage, not here, so
// instrumented libraries do not drag net/http into every binary that
// imports obs — only the CLIs link the server.
//
// The package keeps the hot path cheap: counters and gauges are single
// atomic words, histograms are fixed bucket arrays with atomic adds, and
// instrumented packages resolve their metric handles once at init (or
// link construction) rather than per observation. The overhead budget on
// Link.Send is <2%, enforced by BENCH_obs.json and
// BenchmarkLinkExchangeInstrumented at the repository root.
//
// SpanSet/Span time multi-stage pipelines: a SpanSet registers one
// latency histogram per named stage and keeps an atomic per-owner
// nanosecond accumulator alongside, so owners (e.g. cos.Link) can Drain
// a per-operation stage breakdown while the histograms aggregate across
// operations. StartSpan/End allocate nothing; the zero Span is inert.
// The flight-recorder overhead budget (sampled probes within 2% on top
// of spans) is enforced by BENCH_trace.json via `make bench-trace`.
//
// Metrics live in a Registry. The process-wide Default() registry is what
// the pipeline instruments and what obshttp/Snapshot expose; tests that
// need isolation build their own with NewRegistry and inject it (e.g.
// cos.WithMetricsRegistry), or call Default().Reset() and read deltas.
//
// The metrics catalogue is documented in the repository README's
// "Observability" section.
package obs
