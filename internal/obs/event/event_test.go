package event

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a clock yielding 1000, 2000, 3000, ... ns.
func fixedClock() func() int64 {
	var t int64
	return func() int64 {
		t += 1000
		return t
	}
}

type payload struct {
	N int `json:"n"`
}

func TestJournalAppendAssignsSequenceAndMonotonicTime(t *testing.T) {
	j := New(8)
	j.SetClock(fixedClock())
	for i := 1; i <= 3; i++ {
		ev := j.Append("tick", "", payload{N: i})
		if ev.Seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", ev.Seq, i)
		}
		if ev.TNS != int64(i)*1000 {
			t.Fatalf("t_ns = %d, want %d", ev.TNS, i*1000)
		}
	}
	evs := j.Snapshot(0)
	if len(evs) != 3 {
		t.Fatalf("snapshot has %d events, want 3", len(evs))
	}
	if string(evs[1].Data) != `{"n":2}` {
		t.Fatalf("data = %s", evs[1].Data)
	}
	if j.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d", j.LastSeq())
	}
}

func TestJournalDropsOldestWhenFull(t *testing.T) {
	j := New(4)
	for i := 1; i <= 10; i++ {
		j.Append("tick", "", payload{N: i})
	}
	if got := j.Evicted(); got != 6 {
		t.Fatalf("Evicted = %d, want 6", got)
	}
	evs := j.Snapshot(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("retained[%d].Seq = %d, want %d (drop-oldest)", i, ev.Seq, want)
		}
	}
}

func TestJournalSnapshotSince(t *testing.T) {
	j := New(8)
	for i := 1; i <= 5; i++ {
		j.Append("tick", "", nil)
	}
	evs := j.Snapshot(3)
	if len(evs) != 2 || evs[0].Seq != 4 || evs[1].Seq != 5 {
		t.Fatalf("Snapshot(3) = %+v, want seqs 4,5", evs)
	}
	if got := j.Snapshot(5); got != nil {
		t.Fatalf("Snapshot(last) = %+v, want nil", got)
	}
	if got := j.Snapshot(99); got != nil {
		t.Fatalf("Snapshot(future) = %+v, want nil", got)
	}
}

func TestSubscribeReplaysThenStreams(t *testing.T) {
	j := New(16)
	for i := 1; i <= 3; i++ {
		j.Append("old", "", payload{N: i})
	}
	sub := j.Subscribe(1, 8) // resume after seq 1: replay 2,3
	defer sub.Cancel()
	j.Append("new", "job-1", nil)

	var got []uint64
	for len(got) < 3 {
		select {
		case ev := <-sub.C():
			got = append(got, ev.Seq)
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out; got %v", got)
		}
	}
	if got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("subscriber saw seqs %v, want [2 3 4]", got)
	}
}

// TestSlowSubscriberNeverBlocksProducer is the backpressure guarantee the
// /events endpoint relies on: a subscriber that never reads must not stall
// Append, and the events it missed must be counted.
func TestSlowSubscriberNeverBlocksProducer(t *testing.T) {
	j := New(32)
	sub := j.Subscribe(0, 4) // tiny buffer, never read
	defer sub.Cancel()

	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			j.Append("flood", "", payload{N: i})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Append blocked on a slow subscriber")
	}
	// 4 events fit in the buffer; the rest must have been dropped.
	if got := sub.dropped.Load(); got != 996 {
		t.Fatalf("subscription dropped %d events, want 996", got)
	}
	if got := j.Dropped(); got != 996 {
		t.Fatalf("journal Dropped() = %d, want 996", got)
	}
	if got := sub.TakeDropped(); got != 996 {
		t.Fatalf("TakeDropped = %d, want 996", got)
	}
	if got := sub.TakeDropped(); got != 0 {
		t.Fatalf("second TakeDropped = %d, want 0", got)
	}
}

// TestJournalFanoutConcurrency exercises concurrent producers, a consuming
// subscriber, and cancellation under the race detector (make ci runs this
// with -race).
func TestJournalFanoutConcurrency(t *testing.T) {
	j := New(128)
	sub := j.Subscribe(0, 16)
	var consumed int
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for range sub.C() {
			consumed++
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				j.Append("flood", "", payload{N: p*1000 + i})
			}
		}(p)
	}
	wg.Wait()
	if j.LastSeq() != 1000 {
		t.Fatalf("LastSeq = %d, want 1000", j.LastSeq())
	}
	j.Close()
	<-consumerDone
	if uint64(consumed)+sub.dropped.Load() != 1000 {
		t.Fatalf("consumed %d + dropped %d != 1000", consumed, sub.dropped.Load())
	}
	// Sequence numbers stay unique and total even under contention.
	evs := j.Snapshot(0)
	if len(evs) != 128 {
		t.Fatalf("retained %d, want 128", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained seqs not contiguous at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestCloseEndsSubscribersAndDisablesAppend(t *testing.T) {
	j := New(8)
	sub := j.Subscribe(0, 4)
	j.Append("one", "", nil)
	j.Close()
	j.Close() // idempotent

	var seen []string
	for ev := range sub.C() { // channel must close after draining
		seen = append(seen, ev.Type)
	}
	if len(seen) != 1 || seen[0] != "one" {
		t.Fatalf("drained %v, want [one]", seen)
	}
	if ev := j.Append("late", "", nil); ev.Seq != 0 {
		t.Fatalf("Append after Close returned seq %d, want 0 (no-op)", ev.Seq)
	}
	if !j.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// Subscribing to a closed journal yields the replay then a closed
	// channel.
	late := j.Subscribe(0, 4)
	n := 0
	for range late.C() {
		n++
	}
	if n != 1 {
		t.Fatalf("late subscriber drained %d events, want 1", n)
	}
	sub.Cancel() // safe after Close
}

func TestMirrorWritesFilteredJSONLines(t *testing.T) {
	var buf bytes.Buffer
	j := New(8)
	j.SetClock(fixedClock())
	j.Mirror(&buf, func(ev Event) bool { return ev.Type != "noise" })
	j.Append("signal", "job-7", payload{N: 1})
	j.Append("noise", "", nil)
	j.Append("signal", "", payload{N: 2})

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("mirror wrote %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("mirror line is not JSON: %v", err)
	}
	if ev.Seq != 1 || ev.Type != "signal" || ev.Job != "job-7" {
		t.Fatalf("mirror line = %+v", ev)
	}
	if want := `{"seq":1,"t_ns":1000,"type":"signal","job":"job-7","data":{"n":1}}`; lines[0] != want {
		t.Fatalf("mirror line = %s, want %s", lines[0], want)
	}
}

func TestDefaultCapacityAndZeroPayload(t *testing.T) {
	j := New(0)
	if cap(j.ring) != DefaultCapacity {
		t.Fatalf("cap = %d, want %d", cap(j.ring), DefaultCapacity)
	}
	ev := j.Append("bare", "", nil)
	if ev.Data != nil {
		t.Fatalf("nil payload produced data %s", ev.Data)
	}
	if !strings.Contains(ev.String(), `"type":"bare"`) {
		t.Fatalf("String() = %s", ev.String())
	}
}
