// Package event is the structured event journal at the heart of the
// operations plane: a bounded, ring-buffered log of typed JSON events with
// sequence numbers and monotonic timestamps, fanned out to any number of
// subscribers without ever blocking the producer.
//
// Three rules shape the design:
//
//   - Bounded memory. The journal retains the last capacity events; older
//     entries are evicted (drop-oldest) and counted, never silently lost.
//
//   - Producers never block. Append is a marshal plus a short critical
//     section. Subscribers each own a bounded channel; when one falls
//     behind, its oldest pending events are dropped (and counted per
//     subscription) rather than stalling Append.
//
//   - Transport-free. The package imports only the standard library's
//     encoding and sync primitives — no net/http, no obs registry — so the
//     simulation core and the serve core can both emit events. The HTTP
//     stream (GET /events) and the stderr mirror are thin consumers.
//
// Sequence numbers start at 1 and never repeat, so "resume from sequence
// N" is well-defined across the ring: Snapshot and Subscribe replay every
// retained event with Seq > N, and a reader that compares consecutive Seq
// values can detect eviction gaps.
package event

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one journal entry. Data holds the producer's typed payload,
// marshaled at Append time so field order (and therefore the NDJSON byte
// stream) is deterministic.
type Event struct {
	// Seq is the journal-assigned sequence number, starting at 1.
	// Synthetic events injected by consumers (e.g. the HTTP layer's
	// events_dropped notice) carry Seq 0.
	Seq uint64 `json:"seq"`
	// TNS is the monotonic timestamp: nanoseconds since the journal was
	// created. Wall-clock time is deliberately absent — monotonic stamps
	// order events correctly across clock steps and keep fixtures
	// deterministic.
	TNS int64 `json:"t_ns"`
	// Type names the event ("job_admitted", "summary", ...).
	Type string `json:"type"`
	// Job is the correlated job ID, when the event concerns one job.
	Job string `json:"job,omitempty"`
	// Data is the typed payload, already marshaled.
	Data json.RawMessage `json:"data,omitempty"`
}

// Journal is a bounded event log with subscriber fan-out. Create one with
// New; all methods are safe for concurrent use.
type Journal struct {
	start time.Time

	mu       sync.Mutex
	now      func() int64 // monotonic ns; replaceable for fixtures
	ring     []Event      // seq s lives at (s-1) % cap(ring)
	appended uint64       // total events ever appended (last seq)
	closed   bool
	mirror   io.Writer
	keep     func(Event) bool
	subs     map[*Subscription]struct{}

	subDropped atomic.Uint64 // events dropped across all subscriptions
}

// DefaultCapacity is the ring size selected by New when capacity <= 0.
const DefaultCapacity = 1024

// New returns a journal retaining the last capacity events (<= 0 selects
// DefaultCapacity).
func New(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	j := &Journal{
		start: time.Now(),
		ring:  make([]Event, 0, capacity),
		subs:  map[*Subscription]struct{}{},
	}
	j.now = func() int64 { return time.Since(j.start).Nanoseconds() }
	return j
}

// SetClock replaces the monotonic timestamp source (nanoseconds since
// journal start). It exists so fixtures and golden tests can append events
// with reproducible stamps; call it before the first Append.
func (j *Journal) SetClock(now func() int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.now = now
}

// Mirror writes every appended event that keep accepts (nil keeps all) to
// w as one JSON line, under the journal's lock so lines never interleave.
// One mirror is supported; the daemon points it at stderr so process logs
// and the /events stream agree record for record.
func (j *Journal) Mirror(w io.Writer, keep func(Event) bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.mirror = w
	j.keep = keep
}

// Append records an event of the given type, correlated with job (may be
// ""), carrying payload (marshaled immediately; nil omits data). It
// returns the stored event. Append on a closed journal is a no-op and
// returns the zero Event.
func (j *Journal) Append(typ, job string, payload any) Event {
	var data json.RawMessage
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			// Payloads are our own structs; a marshal failure is a
			// programming error surfaced in-band rather than panicking a
			// producer hot path.
			b, _ = json.Marshal(struct {
				MarshalError string `json:"marshal_error"`
			}{err.Error()})
		}
		data = b
	}

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return Event{}
	}
	j.appended++
	ev := Event{Seq: j.appended, TNS: j.now(), Type: typ, Job: job, Data: data}
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, ev)
	} else {
		j.ring[(ev.Seq-1)%uint64(cap(j.ring))] = ev // evict the oldest
	}
	if j.mirror != nil && (j.keep == nil || j.keep(ev)) {
		line, _ := json.Marshal(ev)
		j.mirror.Write(append(line, '\n'))
	}
	for s := range j.subs {
		s.offer(ev)
	}
	j.mu.Unlock()
	return ev
}

// LastSeq returns the sequence number of the most recent event (0 when
// empty).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// OldestSeq returns the sequence number of the oldest retained event (0
// when the journal is empty). A resume request with since < OldestSeq-1
// has lost events to eviction; consumers report the gap in-band.
func (j *Journal) OldestSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.ring) == 0 {
		return 0
	}
	return j.appended - uint64(len(j.ring)) + 1
}

// Evicted returns how many events have been dropped from the ring to make
// room for newer ones (drop-oldest retention).
func (j *Journal) Evicted() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended - uint64(len(j.ring))
}

// Dropped returns the total events dropped across all subscriptions
// because a consumer fell behind its buffer.
func (j *Journal) Dropped() uint64 { return j.subDropped.Load() }

// Snapshot returns a copy of every retained event with Seq > since, in
// sequence order. since 0 returns the full retained window.
func (j *Journal) Snapshot(since uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked(since)
}

func (j *Journal) snapshotLocked(since uint64) []Event {
	n := uint64(len(j.ring))
	if n == 0 {
		return nil
	}
	first := j.appended - n + 1 // oldest retained seq
	if since+1 > first {
		first = since + 1
	}
	if first > j.appended {
		return nil
	}
	out := make([]Event, 0, j.appended-first+1)
	for s := first; s <= j.appended; s++ {
		out = append(out, j.ring[(s-1)%uint64(cap(j.ring))])
	}
	return out
}

// Close marks the journal final: subscriber channels are closed (after
// any pending events drain) and later Appends become no-ops. Idempotent.
func (j *Journal) Close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	for s := range j.subs {
		s.closeLocked()
	}
	j.subs = map[*Subscription]struct{}{}
}

// Closed reports whether Close has been called.
func (j *Journal) Closed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closed
}

// Subscribe registers a live consumer. Events with Seq > since that are
// still retained are replayed first (the channel is sized to hold the full
// replay), then new events stream as they are appended. buf bounds the
// live backlog (<= 0 selects 64): when the consumer falls behind, the
// subscription drops its oldest pending events — the producer never waits.
// Cancel the subscription when done; its channel also closes when the
// journal closes.
func (j *Journal) Subscribe(since uint64, buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	replay := j.snapshotLocked(since)
	if buf < len(replay) {
		buf = len(replay) // the replay window is bounded by ring capacity
	}
	s := &Subscription{j: j, ch: make(chan Event, buf)}
	for _, ev := range replay {
		s.ch <- ev
	}
	if j.closed {
		close(s.ch)
		s.closed = true
		return s
	}
	j.subs[s] = struct{}{}
	return s
}

// Subscription is one consumer's bounded view of the journal.
type Subscription struct {
	j       *Journal
	ch      chan Event
	closed  bool // guarded by j.mu
	dropped atomic.Uint64
}

// C returns the subscription's event channel. It closes when the
// subscription is cancelled or the journal closes.
func (s *Subscription) C() <-chan Event { return s.ch }

// TakeDropped returns the number of events dropped from this subscription
// since the last call and resets the count — consumers use it to emit gap
// notices in their own streams.
func (s *Subscription) TakeDropped() uint64 { return s.dropped.Swap(0) }

// Cancel unregisters the subscription and closes its channel. Safe to call
// more than once and safe to race with journal Close.
func (s *Subscription) Cancel() {
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
	delete(s.j.subs, s)
	s.closeLocked()
}

func (s *Subscription) closeLocked() {
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// offer delivers ev without ever blocking: if the buffer is full the
// oldest pending event is dropped (and counted) to make room. Called with
// the journal lock held, so there is exactly one sender.
func (s *Subscription) offer(ev Event) {
	for {
		select {
		case s.ch <- ev:
			return
		default:
		}
		// Full: evict the oldest pending event. The consumer may race us
		// and drain the channel between the two selects, so loop.
		select {
		case <-s.ch:
			s.dropped.Add(1)
			s.j.subDropped.Add(1)
		default:
		}
	}
}

// String renders the event as its JSON line (without trailing newline);
// handy in error messages.
func (e Event) String() string {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Sprintf("event{seq=%d type=%q}", e.Seq, e.Type)
	}
	return string(b)
}
