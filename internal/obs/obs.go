package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metric is the common behaviour of every registered metric kind.
type metric interface {
	metricName() string
	metricHelp() string
	promType() string
	// promWrite emits the metric's sample lines (no HELP/TYPE header).
	promWrite(w io.Writer)
	// snapshot flattens the metric into name->value pairs.
	snapshot(into map[string]float64)
	// reset zeroes the metric in place (handles stay valid).
	reset()
}

// Registry holds a named set of metrics. The zero value is not usable;
// create with NewRegistry or use the process-wide Default registry. All
// methods are safe for concurrent use, and the metric handles they return
// are safe to update from any goroutine.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
	order   []string
}

// NewRegistry returns an empty registry, independent of Default.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the CoS pipeline
// instruments and that Serve/Snapshot expose.
func Default() *Registry { return defaultRegistry }

// Snapshot flattens the default registry; see Registry.Snapshot.
func Snapshot() map[string]float64 { return defaultRegistry.Snapshot() }

// register returns the existing metric under name after a kind check, or
// installs the one built by mk. Mismatched re-registration panics: two
// packages claiming one name with different kinds is a programming error
// that silent fallback would turn into corrupt dashboards.
func (r *Registry) register(name string, mk func() metric) metric {
	validateName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		want := mk()
		if fmt.Sprintf("%T", m) != fmt.Sprintf("%T", want) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %T (was %T)", name, want, m))
		}
		return m
	}
	m := mk()
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

func validateName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// Counter returns the registry's monotonically increasing counter under
// name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, func() metric { return &Counter{name: name, help: help} }).(*Counter)
}

// Gauge returns the registry's float gauge under name, creating it on
// first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, func() metric { return &Gauge{name: name, help: help} }).(*Gauge)
}

// Histogram returns the registry's histogram under name, creating it with
// the given bucket upper bounds (ascending; a +Inf bucket is implicit) on
// first use. nil bounds select DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, func() metric { return newHistogram(name, help, bounds) }).(*Histogram)
}

// CounterFamily returns the registry's labeled counter family under name,
// creating it on first use. A family is a set of counters distinguished
// by one label's value (e.g. packets by data rate).
func (r *Registry) CounterFamily(name, help, label string) *CounterFamily {
	return r.register(name, func() metric {
		return &CounterFamily{name: name, help: help, label: label, children: map[string]*Counter{}}
	}).(*CounterFamily)
}

// Snapshot flattens every metric into a map: counters and gauges under
// their name, family children under name{label="value"}, histograms as
// name_count, name_sum, and name_p50/_p95/_p99.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	for _, m := range r.sorted() {
		m.snapshot(out)
	}
	return out
}

// Reset zeroes every registered metric in place. Handles held by
// instrumented code remain valid; tests use this to read absolute values
// from the shared default registry.
func (r *Registry) Reset() {
	for _, m := range r.sorted() {
		m.reset()
	}
}

// sorted returns the metrics in registration order.
func (r *Registry) sorted() []metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]metric, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.metrics[name])
	}
	return out
}

// WriteProm emits the registry in the Prometheus text exposition format.
func (r *Registry) WriteProm(w io.Writer) {
	for _, m := range r.sorted() {
		fmt.Fprintf(w, "# HELP %s %s\n", m.metricName(), escapeHelp(m.metricHelp()))
		fmt.Fprintf(w, "# TYPE %s %s\n", m.metricName(), m.promType())
		m.promWrite(w)
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// --- Counter -------------------------------------------------------------

// Counter is a monotonically increasing count. The zero value is usable
// but unregistered; normally obtain one from a Registry.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) promType() string   { return "counter" }
func (c *Counter) promWrite(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}
func (c *Counter) snapshot(into map[string]float64) { into[c.name] = float64(c.Value()) }
func (c *Counter) reset()                           { c.v.Store(0) }

// --- Gauge ---------------------------------------------------------------

// Gauge is a float64 that can move both ways (or accumulate fractional
// quantities like airtime seconds).
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) promType() string   { return "gauge" }
func (g *Gauge) promWrite(w io.Writer) {
	fmt.Fprintf(w, "%s %v\n", g.name, g.Value())
}
func (g *Gauge) snapshot(into map[string]float64) { into[g.name] = g.Value() }
func (g *Gauge) reset()                           { g.bits.Store(0) }

// --- Histogram -----------------------------------------------------------

// DefBuckets are exponential bounds from 1µs to ~8s, suited to the
// pipeline's stage timings.
var DefBuckets = ExpBuckets(1e-6, 2, 24)

// ExpBuckets returns n upper bounds starting at start and growing by
// factor: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// Histogram is a fixed-bucket distribution with an implicit +Inf bucket.
// Observations are O(log buckets) with no allocation; quantiles are
// estimated by linear interpolation inside the matched bucket (the same
// approximation Prometheus' histogram_quantile makes).
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Uint64 // len(bounds)+1; last is +Inf
	count      atomic.Uint64
	sumBits    atomic.Uint64
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the buckets; it
// returns 0 with no observations. Values in the +Inf bucket clamp to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*(rank-cum)/n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) promType() string   { return "histogram" }
func (h *Histogram) promWrite(w io.Writer) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.Count())
	fmt.Fprintf(w, "%s_sum %v\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.Count())
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

func (h *Histogram) snapshot(into map[string]float64) {
	into[h.name+"_count"] = float64(h.Count())
	into[h.name+"_sum"] = h.Sum()
	into[h.name+"_p50"] = h.Quantile(0.50)
	into[h.name+"_p95"] = h.Quantile(0.95)
	into[h.name+"_p99"] = h.Quantile(0.99)
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// --- CounterFamily -------------------------------------------------------

// CounterFamily is a set of counters sharing a name, distinguished by one
// label's value.
type CounterFamily struct {
	name, help, label string

	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for the given label value, creating it
// on first use. Hot paths should cache the returned handle when the label
// value is fixed.
func (f *CounterFamily) With(value string) *Counter {
	f.mu.RLock()
	c, ok := f.children[value]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[value]; ok {
		return c
	}
	c = &Counter{name: f.name}
	f.children[value] = c
	return c
}

// Values returns a copy of the family's children by label value.
func (f *CounterFamily) Values() map[string]uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]uint64, len(f.children))
	for v, c := range f.children {
		out[v] = c.Value()
	}
	return out
}

func (f *CounterFamily) sortedValues() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.children))
	for v := range f.children {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (f *CounterFamily) metricName() string { return f.name }
func (f *CounterFamily) metricHelp() string { return f.help }
func (f *CounterFamily) promType() string   { return "counter" }
func (f *CounterFamily) promWrite(w io.Writer) {
	for _, v := range f.sortedValues() {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", f.name, f.label, escapeLabel(v), f.With(v).Value())
	}
}
func (f *CounterFamily) snapshot(into map[string]float64) {
	for _, v := range f.sortedValues() {
		into[fmt.Sprintf("%s{%s=%q}", f.name, f.label, v)] = float64(f.With(v).Value())
	}
}
func (f *CounterFamily) reset() {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, c := range f.children {
		c.v.Store(0)
	}
}
