package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// StatsLine renders a compact one-line view of the registry: every
// non-zero counter and gauge as name=value (families as
// name{label=value}=count), and every histogram with observations as
// name_p50=value. Sorted for stable output; empty registries render "".
func (r *Registry) StatsLine() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k, v := range snap {
		if v == 0 {
			continue
		}
		// Histograms flatten to five keys; the count and p50 carry the
		// signal on one line, drop sum/p95/p99.
		if strings.HasSuffix(k, "_sum") || strings.HasSuffix(k, "_p95") || strings.HasSuffix(k, "_p99") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		v := snap[k]
		if v == float64(int64(v)) {
			fmt.Fprintf(&b, "%s=%d", k, int64(v))
		} else {
			fmt.Fprintf(&b, "%s=%.3g", k, v)
		}
	}
	return b.String()
}

// StartStatsLogger prints the registry's stats line to w every interval
// until the returned stop function is called; stop prints one final line
// and waits for the goroutine to exit.
func StartStatsLogger(w io.Writer, r *Registry, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintf(w, "obs: %s\n", r.StatsLine())
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			fmt.Fprintf(w, "obs: %s\n", r.StatsLine())
		})
	}
}
