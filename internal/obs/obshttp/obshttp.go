// Package obshttp serves an obs registry over HTTP: Prometheus text,
// expvar JSON, and net/http/pprof profiles on one listener.
//
// It is a separate package so that instrumented libraries importing obs
// do not link net/http into every binary — only the CLIs (which call
// Expose) pay for the server. Keeping the hot-path import graph lean
// matters: the HTTP stack roughly doubles the text segment, which is
// measurable icache pressure on the tight PHY loops.
package obshttp

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"cos/internal/obs"
)

// servedRegistry backs the "cos" expvar: expvar.Publish is
// once-per-process, so the var reads whichever registry Serve saw last
// (in practice always obs.Default()).
var (
	servedRegistry atomic.Pointer[obs.Registry]
	expvarOnce     sync.Once
)

// Handler returns an http.Handler serving the registry in Prometheus text
// format.
func Handler(r *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
}

// Server is a running metrics listener; close it to release the port.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP listener on addr exposing the registry:
//
//	/metrics       Prometheus text format
//	/debug/vars    expvar JSON (registry published as the "cos" var)
//	/debug/pprof/  net/http/pprof profiles
//
// Pass ":0" to bind an ephemeral port and read it back from Addr.
func Serve(r *obs.Registry, addr string) (*Server, error) {
	servedRegistry.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("cos", expvar.Func(func() any {
			if reg := servedRegistry.Load(); reg != nil {
				return reg.Snapshot()
			}
			return map[string]float64{}
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Expose wires a CLI to the default registry: a metrics listener when
// addr is non-empty (logging the bound address to logw, so ":0" is
// discoverable) and a periodic stats line when statsEvery > 0. The
// returned stop function shuts both down; it is safe to call when Expose
// did nothing.
func Expose(addr string, statsEvery time.Duration, logw io.Writer) (stop func(), err error) {
	var srv *Server
	if addr != "" {
		srv, err = Serve(obs.Default(), addr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(logw, "obs: serving /metrics, /debug/vars and /debug/pprof/ on http://%s\n", srv.Addr())
	}
	var stopStats func()
	if statsEvery > 0 {
		stopStats = obs.StartStatsLogger(logw, obs.Default(), statsEvery)
	}
	return func() {
		if stopStats != nil {
			stopStats()
		}
		if srv != nil {
			srv.Close()
		}
	}, nil
}
