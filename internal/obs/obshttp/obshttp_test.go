package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cos/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("serve_test_total", "pkts").Add(7)
	h := r.Histogram("serve_lat_seconds", "", nil)
	h.Observe(0.002)

	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE serve_test_total counter",
		"serve_test_total 7",
		"serve_lat_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	raw, ok := vars["cos"]
	if !ok {
		t.Fatalf("/debug/vars missing the cos var: %s", body)
	}
	var snap map[string]float64
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("cos var is not a snapshot: %v", err)
	}
	if snap["serve_test_total"] != 7 {
		t.Errorf("cos var snapshot: %v", snap)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing standard memstats var")
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", body)
	}
	if code, _ := get(t, base+"/debug/pprof/heap"); code != http.StatusOK {
		t.Errorf("/debug/pprof/heap status %d", code)
	}
}

// TestServeTwice ensures a second listener (e.g. in another test) does not
// panic on duplicate expvar publication and serves the latest registry.
func TestServeTwice(t *testing.T) {
	r1 := obs.NewRegistry()
	r1.Counter("twice_a_total", "").Inc()
	s1, err := Serve(r1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	r2 := obs.NewRegistry()
	r2.Counter("twice_b_total", "").Inc()
	s2, err := Serve(r2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, body := get(t, fmt.Sprintf("http://%s/debug/vars", s2.Addr()))
	if !strings.Contains(body, "twice_b_total") {
		t.Errorf("expvar not tracking the served registry:\n%s", body)
	}
}

func TestExpose(t *testing.T) {
	var log strings.Builder
	stop, err := Expose("", 0, &log)
	if err != nil {
		t.Fatal(err)
	}
	stop() // no-op path

	stop, err = Expose("127.0.0.1:0", 0, &log)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	line := log.String()
	if !strings.Contains(line, "http://127.0.0.1:") {
		t.Errorf("Expose did not log the bound address: %q", line)
	}
	addr := strings.TrimSpace(line[strings.Index(line, "http://"):])
	if code, _ := get(t, addr+"/metrics"); code != http.StatusOK {
		t.Errorf("exposed /metrics status %d", code)
	}
}
