package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cos/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("serve_test_total", "pkts").Add(7)
	h := r.Histogram("serve_lat_seconds", "", nil)
	h.Observe(0.002)

	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE serve_test_total counter",
		"serve_test_total 7",
		"serve_lat_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	raw, ok := vars["cos"]
	if !ok {
		t.Fatalf("/debug/vars missing the cos var: %s", body)
	}
	var snap map[string]float64
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("cos var is not a snapshot: %v", err)
	}
	if snap["serve_test_total"] != 7 {
		t.Errorf("cos var snapshot: %v", snap)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing standard memstats var")
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", body)
	}
	if code, _ := get(t, base+"/debug/pprof/heap"); code != http.StatusOK {
		t.Errorf("/debug/pprof/heap status %d", code)
	}
}

// TestMetricsExposition pins the Prometheus text-format contract scrapers
// depend on: the versioned Content-Type header and one exposition block per
// metric family — counter, gauge, labelled counter family, and histogram
// with buckets/sum/count.
func TestMetricsExposition(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("expo_jobs_total", "jobs").Add(3)
	r.Gauge("expo_depth", "queue depth").Set(5)
	fam := r.CounterFamily("expo_rejected_total", "rejections", "reason")
	fam.With("overload").Add(2)
	fam.With("invalid").Inc()
	h := r.Histogram("expo_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.002)
	h.Observe(0.05)

	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q, want the Prometheus 0.0.4 text format", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE expo_jobs_total counter",
		"expo_jobs_total 3",
		"# TYPE expo_depth gauge",
		"expo_depth 5",
		"# TYPE expo_rejected_total counter",
		`expo_rejected_total{reason="overload"} 2`,
		`expo_rejected_total{reason="invalid"} 1`,
		"# TYPE expo_lat_seconds histogram",
		`expo_lat_seconds_bucket{le="0.01"} 1`,
		`expo_lat_seconds_bucket{le="+Inf"} 2`,
		"expo_lat_seconds_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Histogram sum is a float; locate the line rather than exact-match.
	if !strings.Contains(body, "expo_lat_seconds_sum 0.052") {
		t.Errorf("/metrics missing histogram sum:\n%s", body)
	}
}

// TestExpvarSnapshotShape pins /debug/vars: valid JSON whose cos var maps
// metric names (with label suffixes) to numbers.
func TestExpvarSnapshotShape(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("expv_inflight", "").Set(2)
	r.CounterFamily("expv_finished_total", "", "state").With("done").Add(4)

	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, body := get(t, "http://"+srv.Addr()+"/debug/vars")

	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var snap map[string]float64
	if err := json.Unmarshal(vars["cos"], &snap); err != nil {
		t.Fatalf("cos var is not a flat name->number snapshot: %v\n%s", err, vars["cos"])
	}
	if snap["expv_inflight"] != 2 {
		t.Errorf("snapshot gauge = %v", snap)
	}
	found := false
	for name, v := range snap {
		if strings.HasPrefix(name, "expv_finished_total") && v == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("snapshot missing labelled counter: %v", snap)
	}
}

// TestServeTwice ensures a second listener (e.g. in another test) does not
// panic on duplicate expvar publication and serves the latest registry.
func TestServeTwice(t *testing.T) {
	r1 := obs.NewRegistry()
	r1.Counter("twice_a_total", "").Inc()
	s1, err := Serve(r1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	r2 := obs.NewRegistry()
	r2.Counter("twice_b_total", "").Inc()
	s2, err := Serve(r2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, body := get(t, fmt.Sprintf("http://%s/debug/vars", s2.Addr()))
	if !strings.Contains(body, "twice_b_total") {
		t.Errorf("expvar not tracking the served registry:\n%s", body)
	}
}

func TestExpose(t *testing.T) {
	var log strings.Builder
	stop, err := Expose("", 0, &log)
	if err != nil {
		t.Fatal(err)
	}
	stop() // no-op path

	stop, err = Expose("127.0.0.1:0", 0, &log)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	line := log.String()
	if !strings.Contains(line, "http://127.0.0.1:") {
		t.Errorf("Expose did not log the bound address: %q", line)
	}
	addr := strings.TrimSpace(line[strings.Index(line, "http://"):])
	if code, _ := get(t, addr+"/metrics"); code != http.StatusOK {
		t.Errorf("exposed /metrics status %d", code)
	}
}
