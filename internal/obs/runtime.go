package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimePauseBuckets spans 100ns..~3.3ms, matched to Go's sub-millisecond
// stop-the-world pauses rather than the pipeline-scale DefBuckets.
var runtimePauseBuckets = ExpBuckets(1e-7, 2, 15)

// StartRuntimeMetrics registers process self-metrics on r and samples them
// every interval (<= 0 selects 10s) until the returned stop function is
// called. The metrics cover what an operator needs to correlate daemon
// behaviour with job traffic — goroutine count, heap occupancy, and GC
// pause distribution — using only the runtime package:
//
//	cos_runtime_goroutines        live goroutines (gauge)
//	cos_runtime_heap_alloc_bytes  bytes of live heap objects (gauge)
//	cos_runtime_heap_sys_bytes    heap memory obtained from the OS (gauge)
//	cos_runtime_heap_objects      live heap object count (gauge)
//	cos_runtime_next_gc_bytes     heap target of the next GC cycle (gauge)
//	cos_runtime_uptime_seconds    seconds since StartRuntimeMetrics (gauge)
//	cos_runtime_gc_total          completed GC cycles (counter)
//	cos_runtime_gc_pause_seconds  stop-the-world pause durations (histogram)
//
// The first sample is taken synchronously, so the metrics are live as soon
// as this returns. Stop is idempotent. Registering on the same registry
// twice reuses the same metric handles (the registry deduplicates by
// name); the second sampler simply overwrites the first's gauges with
// equally fresh values.
func StartRuntimeMetrics(r *Registry, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 10 * time.Second
	}
	s := &runtimeSampler{
		start:      time.Now(),
		goroutines: r.Gauge("cos_runtime_goroutines", "live goroutines"),
		heapAlloc:  r.Gauge("cos_runtime_heap_alloc_bytes", "bytes of live heap objects"),
		heapSys:    r.Gauge("cos_runtime_heap_sys_bytes", "heap memory obtained from the OS"),
		heapObjs:   r.Gauge("cos_runtime_heap_objects", "live heap object count"),
		nextGC:     r.Gauge("cos_runtime_next_gc_bytes", "heap target of the next GC cycle"),
		uptime:     r.Gauge("cos_runtime_uptime_seconds", "seconds since runtime metrics started"),
		gcCycles:   r.Counter("cos_runtime_gc_total", "completed GC cycles"),
		gcPause:    r.Histogram("cos_runtime_gc_pause_seconds", "GC stop-the-world pause durations", runtimePauseBuckets),
		done:       make(chan struct{}),
	}
	s.sample()
	go s.loop(every)
	return func() { s.stopOnce.Do(func() { close(s.done) }) }
}

type runtimeSampler struct {
	start time.Time

	goroutines, heapAlloc, heapSys, heapObjs, nextGC, uptime *Gauge
	gcCycles                                                 *Counter
	gcPause                                                  *Histogram

	lastNumGC uint32 // GC cycles already folded into the histogram

	done     chan struct{}
	stopOnce sync.Once
}

func (s *runtimeSampler) loop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.sample()
		}
	}
}

func (s *runtimeSampler) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)

	s.goroutines.Set(float64(runtime.NumGoroutine()))
	s.heapAlloc.Set(float64(m.HeapAlloc))
	s.heapSys.Set(float64(m.HeapSys))
	s.heapObjs.Set(float64(m.HeapObjects))
	s.nextGC.Set(float64(m.NextGC))
	s.uptime.Set(time.Since(s.start).Seconds())

	// Fold the pauses of cycles completed since the last sample into the
	// histogram. PauseNs is a ring of the last 256 pauses; if more than 256
	// cycles elapsed between samples the overwritten ones are unrecoverable,
	// so clamp — the cycle counter still advances by the true delta.
	if delta := m.NumGC - s.lastNumGC; delta > 0 {
		s.gcCycles.Add(uint64(delta))
		n := delta
		if n > uint32(len(m.PauseNs)) {
			n = uint32(len(m.PauseNs))
		}
		for i := m.NumGC - n; i < m.NumGC; i++ {
			s.gcPause.Observe(float64(m.PauseNs[i%uint32(len(m.PauseNs))]) / 1e9)
		}
		s.lastNumGC = m.NumGC
	}
}
