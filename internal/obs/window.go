package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// This file holds the rolling-window statistics behind the operations
// plane's periodic summary frames: RateWindow (events per second over a
// sliding wall-clock window) and QuantileWindow (streaming quantiles over
// the last N samples). Unlike the registry's counters and histograms —
// which aggregate since process start — these answer "what is happening
// right now", which is what an operator console needs.
//
// Both types expose *At variants taking an explicit time so tests and
// fixtures are deterministic; the convenience methods use time.Now.

// RateWindow counts events over a sliding window using fixed-width time
// buckets (a ring, so memory is bounded regardless of event rate). The
// estimate is exact at bucket granularity: events older than the window by
// up to one bucket width may still be counted.
type RateWindow struct {
	mu       sync.Mutex
	bucketNS int64
	counts   []uint64
	head     int64 // absolute bucket index currently accumulating
	total    uint64
}

// NewRateWindow returns a window of the given span split into buckets
// (buckets <= 0 selects 20). Span must be positive.
func NewRateWindow(span time.Duration, buckets int) *RateWindow {
	if span <= 0 {
		panic("obs: RateWindow span must be positive")
	}
	if buckets <= 0 {
		buckets = 20
	}
	bucketNS := span.Nanoseconds() / int64(buckets)
	if bucketNS < 1 {
		bucketNS = 1
	}
	return &RateWindow{bucketNS: bucketNS, counts: make([]uint64, buckets)}
}

// Add records n events now.
func (w *RateWindow) Add(n int) { w.AddAt(time.Now(), n) }

// AddAt records n events at time t. Times must not move backwards by more
// than the window span; late events land in the current bucket.
func (w *RateWindow) AddAt(t time.Time, n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.advance(t)
	w.counts[w.head%int64(len(w.counts))] += uint64(n)
	w.total += uint64(n)
}

// Count returns the events recorded within the window ending now.
func (w *RateWindow) Count() uint64 { return w.CountAt(time.Now()) }

// CountAt returns the events recorded within the window ending at t.
func (w *RateWindow) CountAt(t time.Time) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.advance(t)
	return w.total
}

// Rate returns events per second over the window ending now.
func (w *RateWindow) Rate() float64 { return w.RateAt(time.Now()) }

// RateAt returns events per second over the window ending at t.
func (w *RateWindow) RateAt(t time.Time) float64 {
	span := float64(w.bucketNS*int64(len(w.counts))) / 1e9
	return float64(w.CountAt(t)) / span
}

// advance expires buckets older than the window. Called locked.
func (w *RateWindow) advance(t time.Time) {
	idx := t.UnixNano() / w.bucketNS
	if idx <= w.head {
		return
	}
	steps := idx - w.head
	if steps > int64(len(w.counts)) {
		steps = int64(len(w.counts))
	}
	for i := int64(1); i <= steps; i++ {
		slot := (w.head + i) % int64(len(w.counts))
		w.total -= w.counts[slot]
		w.counts[slot] = 0
	}
	w.head = idx
}

// QuantileWindow estimates quantiles over the most recent n observations
// (a sliding sample window, not a decaying sketch: every one of the last n
// values contributes exactly once). Observe is O(1); Quantile copies and
// sorts the window, which at the summary-frame cadence (about once a
// second over a few hundred samples) is far cheaper than maintaining an
// ordered structure on every observation.
type QuantileWindow struct {
	mu      sync.Mutex
	samples []float64
	n       int // filled
	next    int // ring cursor
	scratch []float64
}

// NewQuantileWindow returns a window over the last n observations (n <= 0
// selects 512).
func NewQuantileWindow(n int) *QuantileWindow {
	if n <= 0 {
		n = 512
	}
	return &QuantileWindow{samples: make([]float64, n), scratch: make([]float64, n)}
}

// Observe records one value, evicting the oldest once the window is full.
func (w *QuantileWindow) Observe(v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples[w.next] = v
	w.next = (w.next + 1) % len(w.samples)
	if w.n < len(w.samples) {
		w.n++
	}
}

// Count returns how many observations the window currently holds.
func (w *QuantileWindow) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Quantile returns the q-quantile (0 <= q <= 1, nearest-rank) of the
// windowed samples, or NaN with no observations.
func (w *QuantileWindow) Quantile(q float64) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return math.NaN()
	}
	s := w.scratch[:w.n]
	copy(s, w.samples[:w.n])
	sort.Float64s(s)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	i := int(math.Ceil(q*float64(w.n))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}
