package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestRateWindowCountsAndExpires(t *testing.T) {
	base := time.Unix(1000, 0)
	w := NewRateWindow(10*time.Second, 10) // 1s buckets

	for i := 0; i < 5; i++ {
		w.AddAt(base.Add(time.Duration(i)*time.Second), 2)
	}
	if got := w.CountAt(base.Add(4 * time.Second)); got != 10 {
		t.Fatalf("count inside window = %d, want 10", got)
	}
	if got := w.RateAt(base.Add(4 * time.Second)); got != 1.0 {
		t.Fatalf("rate = %v, want 1.0 (10 events / 10s window)", got)
	}

	// At base+12s the window spans buckets base+3s..base+12s, so only the
	// adds at base+3s and base+4s survive.
	if got := w.CountAt(base.Add(12 * time.Second)); got != 2*2 {
		t.Fatalf("count after partial expiry = %d, want 4", got)
	}
	// Far in the future everything expires.
	if got := w.CountAt(base.Add(time.Hour)); got != 0 {
		t.Fatalf("count after full expiry = %d, want 0", got)
	}
}

func TestRateWindowLateEventsLandInCurrentBucket(t *testing.T) {
	base := time.Unix(2000, 0)
	w := NewRateWindow(time.Second, 4)
	w.AddAt(base, 1)
	w.AddAt(base.Add(-time.Hour), 1) // clock went backwards: still counted
	if got := w.CountAt(base); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestRateWindowConcurrent(t *testing.T) {
	w := NewRateWindow(time.Second, 10)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := w.Count(); got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
}

func TestQuantileWindowNearestRank(t *testing.T) {
	w := NewQuantileWindow(100)
	if !math.IsNaN(w.Quantile(0.5)) {
		t.Fatal("empty window quantile should be NaN")
	}
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 50}, {0.99, 99}, {1, 100},
	} {
		if got := w.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if w.Count() != 100 {
		t.Fatalf("Count = %d", w.Count())
	}
}

func TestQuantileWindowSlides(t *testing.T) {
	w := NewQuantileWindow(4)
	for _, v := range []float64{1, 2, 3, 4, 100, 100, 100, 100} {
		w.Observe(v)
	}
	// The early small samples must have been evicted.
	if got := w.Quantile(0); got != 100 {
		t.Fatalf("min after slide = %v, want 100", got)
	}
	if w.Count() != 4 {
		t.Fatalf("Count = %d, want 4", w.Count())
	}
}

func TestQuantileWindowClampsQ(t *testing.T) {
	w := NewQuantileWindow(4)
	w.Observe(7)
	if got := w.Quantile(-1); got != 7 {
		t.Fatalf("Quantile(-1) = %v", got)
	}
	if got := w.Quantile(2); got != 7 {
		t.Fatalf("Quantile(2) = %v", got)
	}
}
