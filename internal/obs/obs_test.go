package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Error("re-registration returned a different handle")
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}

	snap := r.Snapshot()
	if snap["test_total"] != 5 || snap["test_gauge"] != 1.5 {
		t.Errorf("snapshot: %v", snap)
	}

	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Errorf("reset left %d / %v", c.Value(), g.Value())
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Error("gauge under a counter name should panic")
		}
	}()
	r.Gauge("dual", "")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad name should panic")
		}
	}()
	NewRegistry().Counter("bad name", "")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", LinearBuckets(1, 1, 100))
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5050) > 1e-9 {
		t.Errorf("sum = %v, want 5050", got)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 50, 1},
		{0.95, 95, 1},
		{0.99, 99, 1},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%v = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	// Overflow clamps to the top finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 100 {
		t.Errorf("q1 with overflow = %v, want 100", got)
	}

	snap := r.Snapshot()
	for _, k := range []string{"lat_seconds_count", "lat_seconds_sum", "lat_seconds_p50", "lat_seconds_p95", "lat_seconds_p99"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing %s: %v", k, snap)
		}
	}
}

func TestHistogramObserveSince(t *testing.T) {
	h := NewRegistry().Histogram("t_seconds", "", nil)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Errorf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestCounterFamily(t *testing.T) {
	r := NewRegistry()
	f := r.CounterFamily("pkts_total", "packets by rate", "rate_mbps")
	f.With("6").Add(2)
	f.With("54").Inc()
	if f.With("6").Value() != 2 {
		t.Errorf("child = %d", f.With("6").Value())
	}
	vals := f.Values()
	if vals["6"] != 2 || vals["54"] != 1 {
		t.Errorf("values: %v", vals)
	}
	snap := r.Snapshot()
	if snap[`pkts_total{rate_mbps="6"}`] != 2 {
		t.Errorf("snapshot: %v", snap)
	}
	r.Reset()
	if f.With("6").Value() != 0 {
		t.Error("family not reset")
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "the\ncount").Add(3)
	r.Gauge("g", "").Set(1.25)
	h := r.Histogram("h_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	r.CounterFamily("f_total", "", "kind").With(`a"b`).Inc()

	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE c_total counter",
		"c_total 3",
		`# HELP c_total the\ncount`,
		"# TYPE g gauge",
		"g 1.25",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="+Inf"} 2`,
		"h_seconds_count 2",
		`f_total{kind="a\"b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentUpdates exercises every metric kind from many goroutines;
// run with -race to verify the registry is data-race free.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "")
	g := r.Gauge("cg", "")
	h := r.Histogram("ch_seconds", "", nil)
	f := r.CounterFamily("cf_total", "", "w")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) * 1e-3)
				f.With([]string{"a", "b"}[w%2]).Inc()
				// Concurrent registration of the same names must be safe.
				r.Counter("cc_total", "").Value()
			}
		}(w)
	}
	// Concurrent readers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Snapshot()
				var b strings.Builder
				r.WriteProm(&b)
				_ = r.StatsLine()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if f.With("a").Value()+f.With("b").Value() != workers*per {
		t.Errorf("family sum = %d", f.With("a").Value()+f.With("b").Value())
	}
}

func TestStatsLine(t *testing.T) {
	r := NewRegistry()
	if r.StatsLine() != "" {
		t.Errorf("empty registry line = %q", r.StatsLine())
	}
	r.Counter("b_total", "").Add(2)
	r.Counter("a_total", "").Inc()
	r.Counter("zero_total", "") // stays silent
	line := r.StatsLine()
	if line != "a_total=1 b_total=2" {
		t.Errorf("stats line = %q", line)
	}
}

func TestStartStatsLogger(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	stop := StartStatsLogger(w, r, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if !strings.Contains(out, "x_total=1") {
		t.Errorf("logger output %q missing stats", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestDefaultRegistryAndSnapshot(t *testing.T) {
	c := Default().Counter("obs_test_default_total", "")
	c.Inc()
	if Snapshot()["obs_test_default_total"] < 1 {
		t.Error("package Snapshot does not see default registry")
	}
}
