// Command cos-sim runs a CoS link simulation and prints per-packet and
// aggregate statistics: data PRR, control delivery rate, detection accuracy,
// measured/actual SNR, and the achieved free-control-message rate.
//
// Usage:
//
//	cos-sim -snr 18 -position B -packets 200 -size 1024 -control 32
//	cos-sim -snr 12 -mobile -interference
//	cos-sim -runs 8 -workers 4 -packets 500
//	cos-sim -packets 5000 -metrics-addr :8080 -stats 2s
//	cos-sim -list-scenarios
//	cos-sim -scenario hybrid-bscpec -snr 12
//	cos-sim -scenario pulse:40,160,0.004 -packets 200
//
// -runs N repeats the session over N independent channel realizations
// (run r uses channel variant r and a seed derived from -seed) and reports
// per-run and pooled statistics; runs execute across -workers goroutines
// with results independent of the worker count. Ctrl-C stops a simulation
// mid-session.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"

	"cos"
	"cos/internal/cli"
	"cos/internal/pool"
	"cos/internal/scenario"
	"cos/internal/trace"
)

func positionByName(name string) (cos.Position, error) {
	switch strings.ToUpper(name) {
	case "A":
		return cos.PositionA, nil
	case "B":
		return cos.PositionB, nil
	case "C":
		return cos.PositionC, nil
	case "FLAT":
		return cos.PositionFlat, nil
	default:
		return 0, fmt.Errorf("unknown position %q (want A, B, C or flat)", name)
	}
}

// runStats aggregates one session (one link, -packets packets).
type runStats struct {
	dataOK, ctrlOK, ctrlSent      int
	silences, fPos, fNeg, scanned int
	ctrlBitsDelivered             int
	measuredSum                   float64
	elapsed                       float64
}

func (s *runStats) add(o runStats) {
	s.dataOK += o.dataOK
	s.ctrlOK += o.ctrlOK
	s.ctrlSent += o.ctrlSent
	s.silences += o.silences
	s.fPos += o.fPos
	s.fNeg += o.fNeg
	s.scanned += o.scanned
	s.ctrlBitsDelivered += o.ctrlBitsDelivered
	s.measuredSum += o.measuredSum
	s.elapsed += o.elapsed
}

func main() {
	var (
		snr      = flag.Float64("snr", 18, "true channel SNR in dB")
		posName  = flag.String("position", "B", "receiver position: A, B, C or flat")
		packets  = flag.Int("packets", 100, "packets to send per run")
		size     = flag.Int("size", 1024, "payload size in bytes")
		ctrlBits = flag.Int("control", 32, "control bits per packet (0 = data only; capped by budget)")
		rate     = flag.Int("rate", 0, "fixed data rate in Mb/s (0 = SNR-based adaptation)")
		mobile   = flag.Bool("mobile", false, "walking-speed mobile channel")
		intf     = flag.Bool("interference", false, "inject strong pulse interference")
		seed     = flag.Int64("seed", 1, "simulation seed")
		runs     = flag.Int("runs", 1, "independent channel realizations to simulate")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for -runs (results identical for any count)")
		verbose  = flag.Bool("v", false, "print each packet (single run only)")
		traceOut = flag.String("trace", "", "write a JSON-lines event trace to this file (single run only)")
		probeN   = flag.Int("probe", 0, "record a PHY introspection probe every N packets into the trace (0 = off; needs -trace)")
	)
	scenRef, listScen := cli.ScenarioFlags(flag.CommandLine)
	obsAddr, obsStats := cli.ObsFlags(flag.CommandLine)
	flag.Parse()

	if *listScen {
		fmt.Print(scenario.FormatList())
		return
	}
	scen, err := cli.ParseScenario(*scenRef)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
		os.Exit(2)
	}

	app, err := cli.Boot(*obsAddr, *obsStats, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
		os.Exit(1)
	}
	defer app.Close()

	pos, err := positionByName(*posName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
		os.Exit(2)
	}
	if *runs < 1 {
		fmt.Fprintf(os.Stderr, "cos-sim: -runs %d must be at least 1\n", *runs)
		os.Exit(2)
	}
	if *runs > 1 && (*traceOut != "" || *verbose) {
		fmt.Fprintln(os.Stderr, "cos-sim: -trace and -v need a deterministic packet order; use -runs 1")
		os.Exit(2)
	}
	if *probeN < 0 {
		fmt.Fprintf(os.Stderr, "cos-sim: -probe %d must be non-negative\n", *probeN)
		os.Exit(2)
	}
	if *probeN > 0 && *traceOut == "" {
		fmt.Fprintln(os.Stderr, "cos-sim: -probe records into the trace; add -trace <file>")
		os.Exit(2)
	}

	ctx := app.Context()

	// Trace capture rides the link's observer hook: one event stream
	// feeds the trace file, the metrics registry, and the printed stats.
	// The schema header goes out immediately and closeTrace flushes on
	// EVERY exit path — os.Exit skips defers, so the interrupt path below
	// must call it explicitly or a Ctrl-C leaves a truncated trace behind.
	var tw *trace.Writer
	closeTrace := func() {}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
			os.Exit(1)
		}
		tw = trace.NewWriter(f)
		closed := false
		closeTrace = func() {
			if closed {
				return
			}
			closed = true
			if err := tw.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "cos-sim: trace: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cos-sim: trace: %v\n", err)
			}
		}
		defer closeTrace()
		if err := tw.WriteHeader(); err != nil {
			fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
			closeTrace()
			os.Exit(1)
		}
	}

	// One session per run. Run 0 reproduces the historical single-run
	// behaviour exactly (same link seed, same payload stream); runs r > 0
	// use channel variant r and seeds derived as seed^r.
	session := func(ctx context.Context, run int) (runStats, error) {
		var st runStats
		linkSeed := *seed
		if run > 0 {
			linkSeed = pool.TaskSeed(*seed, run)
		}
		opts := []cos.Option{cos.WithPosition(pos), cos.WithSNR(*snr), cos.WithSeed(linkSeed)}
		if *scenRef != "" {
			opts = append(opts, cos.WithScenario(scen.Name, scen.Params...))
		}
		if run > 0 {
			opts = append(opts, cos.WithChannelVariant(int64(run)))
		}
		if *rate != 0 {
			opts = append(opts, cos.WithFixedRate(*rate))
		}
		if *mobile {
			opts = append(opts, cos.WithMobile())
		}
		if *intf {
			opts = append(opts, cos.WithInterference(40, 160, 0.004))
		}
		if tw != nil && run == 0 {
			opts = append(opts, cos.WithObserver(tw.Observer()))
			if *probeN > 0 {
				opts = append(opts, cos.WithProbe(*probeN, nil))
			}
		}
		link, err := cos.NewLink(opts...)
		if err != nil {
			return st, err
		}
		rng := rand.New(rand.NewSource(linkSeed + 1))
		data := make([]byte, *size)
		for i := 0; i < *packets; i++ {
			if err := ctx.Err(); err != nil {
				return st, err
			}
			rng.Read(data)
			var ctrl []byte
			if *ctrlBits > 0 {
				budget, err := link.MaxControlBits(len(data))
				if err != nil {
					return st, err
				}
				n := *ctrlBits
				if n > budget {
					n = budget
				}
				n = n / 4 * 4
				ctrl = make([]byte, n)
				for j := range ctrl {
					ctrl[j] = byte(rng.Intn(2))
				}
			}
			ex, err := link.Send(data, ctrl)
			if err != nil {
				return st, fmt.Errorf("packet %d: %w", i, err)
			}
			if ex.DataOK {
				st.dataOK++
			}
			if len(ex.ControlSent) > 0 {
				st.ctrlSent++
				if ex.ControlOK {
					st.ctrlOK++
					st.ctrlBitsDelivered += len(ex.ControlSent)
				}
			}
			st.silences += ex.SilencesInserted
			st.fPos += ex.Detection.FalsePositives
			st.fNeg += ex.Detection.FalseNegatives
			st.scanned += ex.Detection.Silences + ex.Detection.Normals
			st.measuredSum += ex.MeasuredSNRdB
			if *verbose {
				fmt.Printf("pkt %3d: mode=%v dataOK=%v ctrlOK=%v silences=%d measured=%.1fdB actual=%.1fdB\n",
					i, ex.Mode, ex.DataOK, ex.ControlOK, ex.SilencesInserted, ex.MeasuredSNRdB, ex.ActualSNRdB)
			}
		}
		st.elapsed = link.Now()
		return st, nil
	}

	perRun := make([]runStats, *runs)
	err = pool.ForEach(ctx, *workers, *runs, *seed, func(run int, _ *rand.Rand) error {
		st, err := session(ctx, run)
		if err != nil {
			return err
		}
		perRun[run] = st
		return nil
	})
	if err != nil {
		closeTrace() // os.Exit skips defers; keep the partial trace readable
		if cli.Interrupted(err) {
			fmt.Fprintln(os.Stderr, "cos-sim: interrupted")
			os.Exit(cli.ExitInterrupted)
		}
		fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
		os.Exit(1)
	}

	if tw != nil {
		if err := tw.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
			closeTrace()
			os.Exit(1)
		}
	}

	var total runStats
	for _, st := range perRun {
		total.add(st)
	}
	totalPkts := *packets * *runs
	fmt.Printf("position=%v snr=%.1fdB packets=%d size=%dB mobile=%v interference=%v",
		pos, *snr, *packets, *size, *mobile, *intf)
	if *runs > 1 {
		fmt.Printf(" runs=%d", *runs)
	}
	fmt.Println()
	if *runs > 1 {
		for r, st := range perRun {
			fmt.Printf("run %2d: data PRR %.4f  control %d/%d  silences %d\n",
				r, float64(st.dataOK)/float64(*packets), st.ctrlOK, st.ctrlSent, st.silences)
		}
	}
	fmt.Printf("data PRR:              %.4f (%d/%d)\n", float64(total.dataOK)/float64(totalPkts), total.dataOK, totalPkts)
	if total.ctrlSent > 0 {
		fmt.Printf("control delivery rate: %.4f (%d/%d)\n", float64(total.ctrlOK)/float64(total.ctrlSent), total.ctrlOK, total.ctrlSent)
		fmt.Printf("control throughput:    %.0f bit/s of free control messages\n", float64(total.ctrlBitsDelivered)/total.elapsed)
		fmt.Printf("silence symbols:       %d total (%.1f/packet)\n", total.silences, float64(total.silences)/float64(total.ctrlSent))
		if total.scanned > 0 {
			fmt.Printf("detector errors:       %d false positives, %d false negatives over %d positions\n", total.fPos, total.fNeg, total.scanned)
		}
	}
	fmt.Printf("mean measured SNR:     %.1f dB\n", total.measuredSum/float64(totalPkts))
}
