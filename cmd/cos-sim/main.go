// Command cos-sim runs a CoS link simulation and prints per-packet and
// aggregate statistics: data PRR, control delivery rate, detection accuracy,
// measured/actual SNR, and the achieved free-control-message rate.
//
// Usage:
//
//	cos-sim -snr 18 -position B -packets 200 -size 1024 -control 32
//	cos-sim -snr 12 -mobile -interference
//	cos-sim -packets 5000 -metrics-addr :8080 -stats 2s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"cos"
	"cos/internal/obs/obshttp"
	"cos/internal/trace"
)

func positionByName(name string) (cos.Position, error) {
	switch strings.ToUpper(name) {
	case "A":
		return cos.PositionA, nil
	case "B":
		return cos.PositionB, nil
	case "C":
		return cos.PositionC, nil
	case "FLAT":
		return cos.PositionFlat, nil
	default:
		return 0, fmt.Errorf("unknown position %q (want A, B, C or flat)", name)
	}
}

func main() {
	var (
		snr      = flag.Float64("snr", 18, "true channel SNR in dB")
		posName  = flag.String("position", "B", "receiver position: A, B, C or flat")
		packets  = flag.Int("packets", 100, "packets to send")
		size     = flag.Int("size", 1024, "payload size in bytes")
		ctrlBits = flag.Int("control", 32, "control bits per packet (0 = data only; capped by budget)")
		rate     = flag.Int("rate", 0, "fixed data rate in Mb/s (0 = SNR-based adaptation)")
		mobile   = flag.Bool("mobile", false, "walking-speed mobile channel")
		intf     = flag.Bool("interference", false, "inject strong pulse interference")
		seed     = flag.Int64("seed", 1, "simulation seed")
		verbose  = flag.Bool("v", false, "print each packet")
		traceOut = flag.String("trace", "", "write a JSON-lines event trace to this file")
		obsAddr  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address (e.g. :8080)")
		obsStats = flag.Duration("stats", 0, "print a metrics stats line to stderr at this interval (0 = off)")
	)
	flag.Parse()

	stopObs, err := obshttp.Expose(*obsAddr, *obsStats, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
		os.Exit(1)
	}
	defer stopObs()

	pos, err := positionByName(*posName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
		os.Exit(2)
	}
	opts := []cos.Option{cos.WithPosition(pos), cos.WithSNR(*snr), cos.WithSeed(*seed)}
	if *rate != 0 {
		opts = append(opts, cos.WithFixedRate(*rate))
	}
	if *mobile {
		opts = append(opts, cos.WithMobile())
	}
	if *intf {
		opts = append(opts, cos.WithInterference(40, 160, 0.004))
	}

	// Trace capture rides the link's observer hook: one event stream
	// feeds the trace file, the metrics registry, and the printed stats.
	var tw *trace.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		tw = trace.NewWriter(f)
		defer tw.Flush()
		opts = append(opts, cos.WithObserver(tw.Observer()))
	}

	link, err := cos.NewLink(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed + 1))
	data := make([]byte, *size)
	var (
		dataOK, ctrlOK, ctrlSent      int
		silences, fPos, fNeg, scanned int
		ctrlBitsDelivered             int
		measuredSum                   float64
	)
	for i := 0; i < *packets; i++ {
		rng.Read(data)
		var ctrl []byte
		if *ctrlBits > 0 {
			budget, err := link.MaxControlBits(len(data))
			if err != nil {
				fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
				os.Exit(1)
			}
			n := *ctrlBits
			if n > budget {
				n = budget
			}
			n = n / 4 * 4
			ctrl = make([]byte, n)
			for j := range ctrl {
				ctrl[j] = byte(rng.Intn(2))
			}
		}
		ex, err := link.Send(data, ctrl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cos-sim: packet %d: %v\n", i, err)
			os.Exit(1)
		}
		if ex.DataOK {
			dataOK++
		}
		if len(ex.ControlSent) > 0 {
			ctrlSent++
			if ex.ControlOK {
				ctrlOK++
				ctrlBitsDelivered += len(ex.ControlSent)
			}
		}
		silences += ex.SilencesInserted
		fPos += ex.Detection.FalsePositives
		fNeg += ex.Detection.FalseNegatives
		scanned += ex.Detection.Silences + ex.Detection.Normals
		measuredSum += ex.MeasuredSNRdB
		if *verbose {
			fmt.Printf("pkt %3d: mode=%v dataOK=%v ctrlOK=%v silences=%d measured=%.1fdB actual=%.1fdB\n",
				i, ex.Mode, ex.DataOK, ex.ControlOK, ex.SilencesInserted, ex.MeasuredSNRdB, ex.ActualSNRdB)
		}
	}

	if tw != nil {
		if err := tw.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "cos-sim: %v\n", err)
			os.Exit(1)
		}
	}

	elapsed := link.Now()
	fmt.Printf("position=%v snr=%.1fdB packets=%d size=%dB mobile=%v interference=%v\n",
		pos, *snr, *packets, *size, *mobile, *intf)
	fmt.Printf("data PRR:              %.4f (%d/%d)\n", float64(dataOK)/float64(*packets), dataOK, *packets)
	if ctrlSent > 0 {
		fmt.Printf("control delivery rate: %.4f (%d/%d)\n", float64(ctrlOK)/float64(ctrlSent), ctrlOK, ctrlSent)
		fmt.Printf("control throughput:    %.0f bit/s of free control messages\n", float64(ctrlBitsDelivered)/elapsed)
		fmt.Printf("silence symbols:       %d total (%.1f/packet)\n", silences, float64(silences)/float64(ctrlSent))
		if scanned > 0 {
			fmt.Printf("detector errors:       %d false positives, %d false negatives over %d positions\n", fPos, fNeg, scanned)
		}
	}
	fmt.Printf("mean measured SNR:     %.1f dB\n", measuredSum/float64(*packets))
}
