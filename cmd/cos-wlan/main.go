// Command cos-wlan runs the access-coordination WLAN simulation: an AP
// serving several stations, with transmission grants carried either by CoS
// (free, inside data packets) or by explicit control frames. It prints the
// airtime and delivery comparison.
//
//	cos-wlan -stations 3 -rounds 100 -snr 18
//	cos-wlan -rounds 2000 -metrics-addr :8080 -stats 5s
//
// Ctrl-C (or SIGTERM) cancels the simulation mid-run and exits 130.
package main

import (
	"flag"
	"fmt"
	"os"

	"cos/internal/cli"
	"cos/internal/wlan"
)

func main() {
	var (
		stations = flag.Int("stations", 3, "number of stations (1-15)")
		rounds   = flag.Int("rounds", 100, "scheduling rounds")
		snr      = flag.Float64("snr", 18, "per-station true SNR in dB")
		payload  = flag.Int("payload", 1024, "data payload bytes")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	obsAddr, obsStats := cli.ObsFlags(flag.CommandLine)
	flag.Parse()

	app, err := cli.Boot(*obsAddr, *obsStats, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-wlan: %v\n", err)
		os.Exit(1)
	}
	defer app.Close()

	run := func(coord wlan.Coordination) *wlan.Report {
		n, err := wlan.New(wlan.Config{
			Stations:     *stations,
			SNRdB:        *snr,
			PayloadBytes: *payload,
			Coordination: coord,
			Seed:         *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cos-wlan: %v\n", err)
			os.Exit(1)
		}
		rep, err := n.RunContext(app.Context(), *rounds)
		if err != nil {
			if cli.Interrupted(err) {
				fmt.Fprintln(os.Stderr, "cos-wlan: interrupted")
				os.Exit(cli.ExitInterrupted)
			}
			fmt.Fprintf(os.Stderr, "cos-wlan: %v\n", err)
			os.Exit(1)
		}
		return rep
	}

	cosRep := run(wlan.CoordCoS)
	expRep := run(wlan.CoordExplicit)

	fmt.Printf("stations=%d rounds=%d snr=%.1fdB payload=%dB\n\n", *stations, *rounds, *snr, *payload)
	fmt.Printf("%-30s %-14s %-14s\n", "", "CoS grants", "explicit grants")
	row := func(name, a, b string) { fmt.Printf("%-30s %-14s %-14s\n", name, a, b) }
	row("data delivered",
		fmt.Sprintf("%d/%d", cosRep.DataDelivered, cosRep.DataDelivered+cosRep.DataLost),
		fmt.Sprintf("%d/%d", expRep.DataDelivered, expRep.DataDelivered+expRep.DataLost))
	row("grant delivery rate",
		fmt.Sprintf("%.3f", cosRep.GrantDeliveryRate()),
		fmt.Sprintf("%.3f", expRep.GrantDeliveryRate()))
	row("data airtime",
		fmt.Sprintf("%.2f ms", cosRep.DataAirtime*1e3),
		fmt.Sprintf("%.2f ms", expRep.DataAirtime*1e3))
	row("control airtime",
		fmt.Sprintf("%.2f ms", cosRep.ControlAirtime*1e3),
		fmt.Sprintf("%.2f ms", expRep.ControlAirtime*1e3))
	row("control overhead",
		fmt.Sprintf("%.2f%%", 100*cosRep.ControlOverhead()),
		fmt.Sprintf("%.2f%%", 100*expRep.ControlOverhead()))
}
