// Command cos-figures regenerates the data behind every figure of the CoS
// paper's evaluation (Figs. 2, 3, 5, 6, 7, 9, 10a-d) plus this repository's
// ablations, printing long-format CSV.
//
// Usage:
//
//	cos-figures -list
//	cos-figures -list-scenarios
//	cos-figures -fig fig9 [-scale 0.2]
//	cos-figures -fig all -scale 0.1 -out results/
//	cos-figures -fig all -workers 8 -metrics-addr :8080 -stats 10s
//	cos-figures -fig fig3 -scenario hybrid-bscpec
//	cos-figures -fig all -fleet http://host1:8080,http://host2:8080
//
// Scale 1 (default) is the publication-quality run; smaller scales shrink
// packet counts proportionally for quick looks. Figures decompose into
// point-tasks that run across -workers goroutines (default: all CPUs) with
// bit-identical output at any worker count; ctrl-C cancels a run mid-sweep.
//
// -fleet fans the same point-tasks out across a set of cos-serve daemons
// instead of local goroutines: the coordinator health-gates dispatch,
// retries transient refusals with backoff, fails tasks over from dead
// hosts, and assembles results in task order — the CSV is byte-identical
// to a local run regardless of fleet size or which host ran what.
//
// Long runs are worth watching live: -metrics-addr serves /metrics and
// /debug/pprof/, and -stats prints a periodic pipeline stats line to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"cos/internal/cli"
	"cos/internal/experiments"
	"cos/internal/fleet"
	"cos/internal/scenario"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "experiment ID (see -list) or 'all'")
		scale      = flag.Float64("scale", 1, "sample-size scale; 1 = publication quality")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for point-tasks (results identical for any count)")
		seed       = flag.Int64("seed", 1, "experiment seed")
		out        = flag.String("out", "", "directory for per-figure CSV files (default: stdout)")
		plot       = flag.Bool("plot", false, "render an ASCII chart instead of CSV (stdout only)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		fleetHosts = flag.String("fleet", "", "comma-separated cos-serve base URLs to fan point-tasks out to (default: run in-process)")
	)
	scen, listScen := cli.ScenarioFlags(flag.CommandLine)
	obsAddr, obsStats := cli.ObsFlags(flag.CommandLine)
	flag.Parse()

	app, err := cli.Boot(*obsAddr, *obsStats, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-figures: %v\n", err)
		os.Exit(1)
	}
	defer app.Close()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *listScen {
		fmt.Print(scenario.FormatList())
		return
	}

	// Ctrl-C (or SIGTERM) cancels the context; the point-task pool drains
	// and the run exits mid-sweep instead of finishing the figure.
	ctx := app.Context()

	// Fail fast on an unknown or malformed scenario instead of deep
	// inside the first point-task.
	if _, err := cli.ParseScenario(*scen); err != nil {
		fmt.Fprintf(os.Stderr, "cos-figures: %v\n", err)
		os.Exit(2)
	}

	// In-process by default; with -fleet, the same figures run through the
	// coordinator and come back byte-identical.
	runFigure := func(ctx context.Context, id string, opts experiments.RunOptions) (*experiments.Result, error) {
		return experiments.Run(ctx, id, opts)
	}
	if *fleetHosts != "" {
		var backends []fleet.Backend
		for _, h := range strings.Split(*fleetHosts, ",") {
			if h = strings.TrimSpace(h); h != "" {
				backends = append(backends, fleet.Host(h))
			}
		}
		if len(backends) == 0 {
			fmt.Fprintln(os.Stderr, "cos-figures: -fleet needs at least one cos-serve URL")
			os.Exit(2)
		}
		coord := fleet.New(fleet.Config{Backends: backends, Seed: *seed})
		defer coord.Close()
		runFigure = coord.RunFigure
	}

	opts := experiments.RunOptions{Scale: *scale, Workers: *workers, Seed: *seed, Scenario: *scen}
	ids := []string{*fig}
	if *fig == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		res, err := runFigure(ctx, id, opts)
		if err != nil {
			if cli.Interrupted(err) {
				fmt.Fprintf(os.Stderr, "cos-figures: %s: interrupted\n", id)
				os.Exit(cli.ExitInterrupted)
			}
			fmt.Fprintf(os.Stderr, "cos-figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *out == "" {
			if *plot {
				if err := res.WritePlot(os.Stdout, 72, 20); err != nil {
					fmt.Fprintf(os.Stderr, "cos-figures: %v\n", err)
					os.Exit(1)
				}
			} else if err := res.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "cos-figures: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cos-figures: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, id+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cos-figures: %v\n", err)
			os.Exit(1)
		}
		if err := res.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "cos-figures: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cos-figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
