// Command cos-top is a terminal operator console for a running cos-serve
// instance. It consumes the daemon's GET /events journal stream — job
// lifecycle events, rejections, drain markers, and periodic rolling-window
// summary frames — and renders a live single-screen view: admission and
// completion rates, run-latency quantiles, per-stage pipeline time from the
// flight-recorder correlation, event counts, and the most recent events.
//
//	cos-top -addr http://127.0.0.1:8866            # live view, 1s refresh
//	cos-top -addr http://127.0.0.1:8866 -once      # one snapshot, no ANSI
//	cos-top -type job_failed,job_rejected -n 20    # tail failures only
//
// The stream is resumable: cos-top tracks the last seen sequence number and
// reports any events the server had to drop for it. Exit is 0 on server
// drain (the journal closes), 130 on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cos/internal/cli"
	"cos/internal/obs/event"
	"cos/internal/serve/client"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cos-top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8866", "base URL of the cos-serve job API")
		once     = fs.Bool("once", false, "print one snapshot of the retained journal and exit")
		interval = fs.Duration("interval", time.Second, "screen refresh interval in live mode")
		since    = fs.Uint64("since", 0, "resume from this journal sequence number")
		types    = fs.String("type", "", "comma-separated event types to keep (default all)")
		job      = fs.String("job", "", "only events for this job ID")
		recent   = fs.Int("n", 10, "recent events to keep on screen")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	q := client.EventQuery{Since: *since, Job: *job, NoFollow: *once}
	if *types != "" {
		q.Types = strings.Split(*types, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := client.New(*addr)
	es, err := c.Events(ctx, q)
	if err != nil {
		fmt.Fprintf(stderr, "cos-top: %v\n", err)
		return 1
	}
	defer es.Close()

	st := newState(*addr, *recent)

	if *once {
		for {
			ev, ok := es.Next()
			if !ok {
				break
			}
			st.ingest(ev)
		}
		fmt.Fprint(stdout, render(st))
		return 0
	}

	// Live mode: one goroutine drains the stream into the shared state; the
	// ticker repaints. The stream ends when the server drains (journal
	// closed) or the signal context cancels the request.
	events := make(chan streamMsg)
	go func() {
		defer close(events)
		for {
			ev, ok := es.Next()
			if !ok {
				return
			}
			select {
			case events <- streamMsg{ev: ev}:
			case <-ctx.Done():
				return
			}
		}
	}()

	const clearScreen = "\033[H\033[2J"
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	dirty := true
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(stdout)
			return cli.ExitInterrupted
		case msg, ok := <-events:
			if !ok {
				// Server drained: paint the final state and exit clean.
				fmt.Fprint(stdout, clearScreen+render(st))
				fmt.Fprintln(stdout, "cos-top: event stream closed (server drained)")
				return 0
			}
			st.ingest(msg.ev)
			dirty = true
		case <-tick.C:
			if dirty {
				fmt.Fprint(stdout, clearScreen+render(st))
				dirty = false
			}
		}
	}
}

type streamMsg struct {
	ev event.Event
}
