package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cos/internal/obs"
	"cos/internal/obs/event"
	"cos/internal/serve"
	servehttp "cos/internal/serve/http"
)

// fixedClock yields 1ms, 2ms, 3ms... of journal-relative time.
func fixedClock() func() int64 {
	var n int64
	return func() int64 {
		n++
		return n * int64(time.Millisecond)
	}
}

// fixtureJournal builds a deterministic event trail: one finished job with
// stage timings, one overload rejection, a summary frame, and a drain.
func fixtureJournal(t *testing.T) *event.Journal {
	t.Helper()
	j := event.New(64)
	j.SetClock(fixedClock())
	j.Append(serve.EventJobAdmitted, "job-000001", serve.AdmittedEvent{Kind: serve.KindLink, Seed: 7, Shard: 0, QueueDepth: 1})
	j.Append(serve.EventJobStarted, "job-000001", serve.StartedEvent{Kind: serve.KindLink, QueueWaitMS: 0.25})
	j.Append(serve.EventJobFinished, "job-000001", serve.TerminalEvent{
		Kind: serve.KindLink, State: "done", RunMS: 12.5, QueueWaitMS: 0.25, ResultBytes: 2048,
		TraceDigest: "1f0e2d3c4b5a69788796a5b4c3d2e1f00112233445566778899aabbccddeeff0",
		TraceBytes:  4096,
		StageNS: map[string]int64{
			"tx_encode": 4_000_000, "channel": 2_000_000, "rx_frontend": 5_500_000,
			"detect": 500_000, "control_decode": 250_000, "evd_decode": 200_000, "feedback": 50_000,
		},
	})
	j.Append(serve.EventJobRejected, "", serve.RejectedEvent{Reason: "overload", Kind: serve.KindLink, Shard: 0, QueueDepth: 16})
	j.Append(serve.EventSummary, "", serve.SummaryEvent{
		QueueDepth: 3, Inflight: 2,
		SubmitsPerSec: 41.5, JobsPerSec: 40.0, RejectsPerSec: 1.5, RejectRate: 0.036,
		RunMSP50: 12.5, RunMSP99: 19.75,
		StageMSP50: map[string]float64{"tx_encode": 4.0, "rx_frontend": 5.5},
		StageMSP99: map[string]float64{"tx_encode": 6.1, "rx_frontend": 8.2},
	})
	j.Append(serve.EventDrainBegin, "", serve.DrainBeginEvent{WindowMS: 5000})
	j.Append(serve.EventDrainEnd, "", serve.DrainEndEvent{Clean: true})
	return j
}

// startFixtureAPI serves the fixture journal through the real HTTP layer.
func startFixtureAPI(t *testing.T, j *event.Journal) string {
	t.Helper()
	srv := serve.New(serve.Config{Shards: 1, Metrics: obs.NewRegistry(), Journal: j})
	ts := httptest.NewServer(servehttp.NewHandler(srv))
	t.Cleanup(func() {
		srv.Drain(time.Second)
		ts.Close()
	})
	return ts.URL
}

// TestOnceSnapshotDeterministic is the acceptance gate: two --once runs
// against the same fixture are byte-identical.
func TestOnceSnapshotDeterministic(t *testing.T) {
	url := startFixtureAPI(t, fixtureJournal(t))

	snap := func() string {
		var out, errb bytes.Buffer
		if code := run([]string{"-addr", url, "-once"}, &out, &errb); code != 0 {
			t.Fatalf("cos-top -once exited %d: %s", code, errb.String())
		}
		return out.String()
	}
	a, b := snap(), snap()
	if a != b {
		t.Fatalf("snapshots differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}

	for _, want := range []string{
		"seq 7",
		"queue 3   inflight 2",
		"submit 41.5/s",
		"run ms      p50    12.500   p99    19.750",
		"tx_encode",
		"rx_frontend",
		"job_admitted 1",
		"job_finished 1",
		"job_rejected 1",
		"drain_end 1",
		"job-000001",
		"top=rx_frontend(5.5ms)",
		"trace=1f0e2d3c4b5a(4096b)",
		"reason=overload shard=0 depth=16",
		"clean=true",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("snapshot missing %q:\n%s", want, a)
		}
	}
	// Stage table keeps pipeline order: tx_encode before rx_frontend.
	if strings.Index(a, "tx_encode      p50") > strings.Index(a, "rx_frontend") {
		t.Error("stage table not in pipeline order")
	}
}

func TestOnceFilters(t *testing.T) {
	url := startFixtureAPI(t, fixtureJournal(t))
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", url, "-once", "-type", serve.EventJobFinished}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "job_finished 1") || strings.Contains(s, "job_admitted") {
		t.Fatalf("type filter not applied:\n%s", s)
	}
}

func TestBadFlagsExit2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestIngestRecentRingAndDrops(t *testing.T) {
	st := newState("x", 3)
	for i := 1; i <= 5; i++ {
		data, _ := json.Marshal(serve.StartedEvent{Kind: serve.KindLink})
		st.ingest(event.Event{Seq: uint64(i), TNS: int64(i), Type: serve.EventJobStarted, Job: "j", Data: data})
	}
	if len(st.recent) != 3 || st.recent[0].Seq != 3 || st.recent[2].Seq != 5 {
		t.Fatalf("recent ring = %+v", st.recent)
	}
	if st.counts[serve.EventJobStarted] != 5 || st.lastSeq != 5 {
		t.Fatalf("counts=%v lastSeq=%d", st.counts, st.lastSeq)
	}

	gap, _ := json.Marshal(map[string]uint64{"dropped": 4})
	st.ingest(event.Event{Type: "events_dropped", Data: gap})
	st.ingest(event.Event{Type: "events_dropped", Data: gap})
	if st.dropped != 8 {
		t.Fatalf("dropped = %d, want 8", st.dropped)
	}
	if !strings.Contains(render(st), "[8 events dropped]") {
		t.Fatal("render does not surface drops")
	}
}

// TestLiveModeExitsWhenServerDrains covers the follow path end to end: the
// journal closing (server drain) ends the live session with exit 0.
func TestLiveModeExitsWhenServerDrains(t *testing.T) {
	j := fixtureJournal(t)
	url := startFixtureAPI(t, j)

	done := make(chan int, 1)
	var out, errb bytes.Buffer
	go func() {
		done <- run([]string{"-addr", url, "-interval", "10ms"}, &out, &errb)
	}()
	time.Sleep(100 * time.Millisecond)
	j.Close()

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit = %d (stderr %s)", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cos-top did not exit after journal close")
	}
	if !strings.Contains(out.String(), "event stream closed") {
		t.Fatalf("missing close notice:\n%s", out.String())
	}
}
