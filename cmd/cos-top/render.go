package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cos"
	"cos/internal/obs/event"
	"cos/internal/serve"
)

// state is everything cos-top knows, folded from the event stream. It has
// no clocks and no randomness: render(state) is a pure function, so a fixed
// event fixture always produces byte-identical output (pinned by tests and
// usable as a golden snapshot via -once).
type state struct {
	addr    string
	lastSeq uint64
	lastTNS int64 // monotonic offset of the newest event, ns since journal start

	counts  map[string]int      // events seen, by type
	summary *serve.SummaryEvent // newest summary frame, if any
	recent  []event.Event       // newest last, capped at recentCap
	dropped uint64              // events the server dropped for this consumer
}

func newState(addr string, recentCap int) *state {
	if recentCap < 1 {
		recentCap = 10
	}
	return &state{
		addr:   addr,
		counts: map[string]int{},
		recent: make([]event.Event, 0, recentCap),
	}
}

// ingest folds one stream record into the state.
func (st *state) ingest(ev event.Event) {
	if ev.Type == "events_dropped" && ev.Seq == 0 {
		var d struct {
			Dropped uint64 `json:"dropped"`
		}
		if json.Unmarshal(ev.Data, &d) == nil {
			st.dropped += d.Dropped
		}
		return
	}
	if ev.Seq > st.lastSeq {
		st.lastSeq = ev.Seq
	}
	if ev.TNS > st.lastTNS {
		st.lastTNS = ev.TNS
	}
	st.counts[ev.Type]++
	if ev.Type == serve.EventSummary {
		var sum serve.SummaryEvent
		if json.Unmarshal(ev.Data, &sum) == nil {
			st.summary = &sum
		}
		return // summary frames carry no job context; keep the feed readable
	}
	if len(st.recent) == cap(st.recent) {
		copy(st.recent, st.recent[1:])
		st.recent = st.recent[:len(st.recent)-1]
	}
	st.recent = append(st.recent, ev)
}

// render draws the whole screen as one string. Pure: output depends only on
// st.
func render(st *state) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cos-top — %s   seq %d   t +%.3fs", st.addr, st.lastSeq, float64(st.lastTNS)/1e9)
	if st.dropped > 0 {
		fmt.Fprintf(&b, "   [%d events dropped]", st.dropped)
	}
	b.WriteString("\n\n")

	if s := st.summary; s != nil {
		fmt.Fprintf(&b, "queue %d   inflight %d   submit %.1f/s   done %.1f/s   reject %.1f/s (%.0f%%)\n",
			s.QueueDepth, s.Inflight, s.SubmitsPerSec, s.JobsPerSec, s.RejectsPerSec, s.RejectRate*100)
		fmt.Fprintf(&b, "run ms      p50 %9.3f   p99 %9.3f\n", s.RunMSP50, s.RunMSP99)
		if len(s.StageMSP50) > 0 {
			b.WriteString("stage ms (per job, flight recorder)\n")
			// Pipeline order, not map order, so the table is stable.
			for _, name := range cos.StageNames() {
				p50, ok := s.StageMSP50[name]
				if !ok {
					continue
				}
				fmt.Fprintf(&b, "  %-14s p50 %9.3f   p99 %9.3f\n", name, p50, s.StageMSP99[name])
			}
		}
		if s.JournalEvicted > 0 || s.JournalDropped > 0 {
			fmt.Fprintf(&b, "journal     evicted %d   dropped %d\n", s.JournalEvicted, s.JournalDropped)
		}
		b.WriteString("\n")
	}

	if len(st.counts) > 0 {
		types := make([]string, 0, len(st.counts))
		for t := range st.counts {
			types = append(types, t)
		}
		sort.Strings(types)
		b.WriteString("events")
		for _, t := range types {
			fmt.Fprintf(&b, "   %s %d", t, st.counts[t])
		}
		b.WriteString("\n\n")
	}

	if len(st.recent) > 0 {
		fmt.Fprintf(&b, "recent (last %d)\n", len(st.recent))
		for _, ev := range st.recent {
			fmt.Fprintf(&b, "  %6d  +%8.3fs  %-13s %-11s %s\n",
				ev.Seq, float64(ev.TNS)/1e9, ev.Type, ev.Job, eventDetail(ev))
		}
	}
	return b.String()
}

// eventDetail renders a one-line payload gloss for the recent-events feed.
func eventDetail(ev event.Event) string {
	switch ev.Type {
	case serve.EventJobAdmitted:
		var d serve.AdmittedEvent
		if json.Unmarshal(ev.Data, &d) != nil {
			return ""
		}
		return fmt.Sprintf("kind=%s shard=%d depth=%d", d.Kind, d.Shard, d.QueueDepth)
	case serve.EventJobRejected:
		var d serve.RejectedEvent
		if json.Unmarshal(ev.Data, &d) != nil {
			return ""
		}
		s := "reason=" + d.Reason
		if d.Shard >= 0 {
			s += fmt.Sprintf(" shard=%d depth=%d", d.Shard, d.QueueDepth)
		}
		return s
	case serve.EventJobStarted:
		var d serve.StartedEvent
		if json.Unmarshal(ev.Data, &d) != nil {
			return ""
		}
		return fmt.Sprintf("kind=%s wait=%.1fms", d.Kind, d.QueueWaitMS)
	case serve.EventJobFinished, serve.EventJobFailed, serve.EventJobCancelled:
		var d serve.TerminalEvent
		if json.Unmarshal(ev.Data, &d) != nil {
			return ""
		}
		s := fmt.Sprintf("kind=%s run=%.1fms bytes=%d", d.Kind, d.RunMS, d.ResultBytes)
		if d.Error != "" {
			s += " err=" + d.Error
		}
		if d.TraceDigest != "" {
			// Abbreviated content address of the flight-recorder artifact;
			// fetch the full trace with GET /jobs/<digest>/trace.
			s += fmt.Sprintf(" trace=%.12s(%db)", d.TraceDigest, d.TraceBytes)
		}
		if len(d.StageNS) > 0 {
			// Top stage by time: the one-glance answer to "where did it go".
			var top string
			var topNS int64
			for _, name := range cos.StageNames() {
				if ns := d.StageNS[name]; ns > topNS {
					top, topNS = name, ns
				}
			}
			s += fmt.Sprintf(" top=%s(%.1fms)", top, float64(topNS)/1e6)
		}
		return s
	case serve.EventDrainBegin:
		var d serve.DrainBeginEvent
		if json.Unmarshal(ev.Data, &d) != nil {
			return ""
		}
		return fmt.Sprintf("window=%.0fms", d.WindowMS)
	case serve.EventDrainEnd:
		var d serve.DrainEndEvent
		if json.Unmarshal(ev.Data, &d) != nil {
			return ""
		}
		return fmt.Sprintf("clean=%v", d.Clean)
	default:
		if len(ev.Data) > 0 {
			return string(ev.Data)
		}
		return ""
	}
}
