package main

import (
	"context"
	"io"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"cos/internal/serve"
	"cos/internal/serve/client"
)

// TestSIGTERMDrainsGracefully is the daemon's end-to-end acceptance test:
// start the real run() loop on an ephemeral port, put a job in flight, send
// the process SIGTERM, and verify that (1) admission stops — a subsequent
// submit gets a 503 — (2) the in-flight job completes inside the drain
// window with its full NDJSON body readable, and (3) run() exits 0.
func TestSIGTERMDrainsGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the daemon loop and sends a real SIGTERM")
	}

	ready := make(chan string, 1)
	notifyReady = func(addr string) { ready <- addr }
	defer func() { notifyReady = nil }()

	var stdout, stderr strings.Builder
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-drain", "30s"}, &stdout, &stderr)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
	}

	ctx := context.Background()
	c := client.New("http://" + addr)

	// A moderate job: long enough to still be in flight when the signal
	// lands, short enough to finish well inside the drain window even with
	// the race detector's ~10x slowdown (make ci runs this under -race).
	st, err := c.Submit(ctx, serve.Spec{Kind: serve.KindLink, Seed: 9, Packets: 400, PayloadBytes: 256}, client.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	// Admission must stop: poll until a fresh submit is rejected with 503.
	// (The daemon keeps serving status/result during the drain, so the API
	// stays reachable; only submits are refused.)
	deadline := time.Now().Add(30 * time.Second)
	sawDraining := false
	for time.Now().Before(deadline) {
		_, err := c.Submit(ctx, serve.Spec{Kind: serve.KindLink, Packets: 1, PayloadBytes: 64}, client.SubmitOptions{})
		var apiErr *client.APIError
		if ok := errorAs(err, &apiErr); ok && apiErr.Draining() {
			sawDraining = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("submits were never rejected with 503 after SIGTERM")
	}

	// The in-flight job must finish (not be cancelled) and its result body
	// must stream to completion while the daemon drains.
	body, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatalf("result during drain: %v", err)
	}
	if n := strings.Count(string(body), "\n"); n != 401 { // 400 packets + summary
		t.Fatalf("drained job result has %d records, want 401", n)
	}
	final, err := c.Status(ctx, st.ID)
	if err == nil && final.State != "done" {
		t.Fatalf("in-flight job finished %q (err %q), want done", final.State, final.Error)
	}

	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("run() exited %d, want 0; stderr: %s", code, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("run() did not exit after drain; stdout: %s", stdout.String())
	}
	// The daemon's lifecycle log is the journal mirror on stderr: JSON
	// lines for startup, the job's trail, and the clean drain.
	errOut := stderr.String()
	for _, want := range []string{
		`"type":"server_listening"`,
		`"type":"job_admitted"`,
		`"type":"job_finished"`,
		`"type":"drain_end","data":{"clean":true}`,
		`"type":"server_exit","data":{"clean":true}`,
	} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr journal mirror missing %s:\n%s", want, errOut)
		}
	}
}

// startDaemon runs the real run() loop with args on an ephemeral port and
// returns its address plus a stop function that SIGTERMs the process and
// waits for a 0 exit.
func startDaemon(t *testing.T, args ...string) (addr string, stop func()) {
	t.Helper()
	ready := make(chan string, 1)
	notifyReady = func(a string) { ready <- a }
	t.Cleanup(func() { notifyReady = nil })

	var stderr strings.Builder
	exit := make(chan int, 1)
	go func() {
		exit <- run(append([]string{"-addr", "127.0.0.1:0", "-drain", "30s"}, args...), io.Discard, &stderr)
	}()
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
	}
	return addr, func() {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatalf("kill: %v", err)
		}
		select {
		case code := <-exit:
			if code != 0 {
				t.Fatalf("run() exited %d, want 0; stderr: %s", code, stderr.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatal("run() did not exit after SIGTERM")
		}
	}
}

// TestRestartServesDurableResults is the durability acceptance test: two
// daemon processes over the same -data-dir. The first runs a job to
// completion; the second, a fresh process with an empty in-memory state,
// serves that job's digest byte-identically from the durable store — both
// via GET /jobs/{digest}/result and as an X-Cos-Cache hit on resubmission.
func TestRestartServesDurableResults(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the daemon loop twice and sends real SIGTERMs")
	}
	dataDir := t.TempDir()
	ctx := context.Background()
	spec := serve.Spec{Kind: serve.KindLink, Seed: 13, Packets: 5, PayloadBytes: 128}

	addr, stop := startDaemon(t, "-data-dir", dataDir, "-summary-every", "0")
	c := client.New("http://" + addr)
	st, err := c.Submit(ctx, spec, client.SubmitOptions{Trace: true, ProbeEvery: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.Digest == "" {
		t.Fatal("submit status carried no digest")
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	body, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	traceBody, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatalf("trace before restart: %v", err)
	}
	stop()

	addr2, stop2 := startDaemon(t, "-data-dir", dataDir, "-summary-every", "0")
	defer stop2()
	c2 := client.New("http://" + addr2)

	// The digest resolves with no job ID from this process's lifetime.
	replayed, err := c2.ResultBytes(ctx, st.Digest)
	if err != nil {
		t.Fatalf("result by digest after restart: %v", err)
	}
	if string(replayed) != string(body) {
		t.Fatalf("restarted daemon served %d bytes, original %d; streams must be byte-identical",
			len(replayed), len(body))
	}

	// Resubmitting the same spec is a cache hit, not a re-run.
	st2, err := c2.Submit(ctx, spec, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != "done" || st2.Digest != st.Digest {
		t.Fatalf("resubmission after restart = %+v, want a cached done job with digest %s", st2, st.Digest)
	}
	again, err := c2.ResultBytes(ctx, st2.ID)
	if err != nil || string(again) != string(body) {
		t.Fatalf("cached resubmission bytes differ (err %v)", err)
	}

	// The trace artifact survived too: the fresh process re-serves the
	// first process's capture byte-identically, addressed by spec digest.
	replayedTrace, err := c2.Trace(ctx, st.Digest)
	if err != nil {
		t.Fatalf("trace by digest after restart: %v", err)
	}
	if string(replayedTrace) != string(traceBody) {
		t.Fatalf("restarted daemon served a %d-byte trace, original %d; trace bytes must be identical",
			len(replayedTrace), len(traceBody))
	}
}

// TestBadFlagsExit2 pins the CLI contract for unknown flags.
func TestBadFlagsExit2(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-no-such-flag) = %d, want 2", code)
	}
}

func errorAs(err error, target **client.APIError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*client.APIError)
	if ok {
		*target = e
	}
	return ok
}
