// Command cos-serve is the long-lived CoS simulation service: an HTTP/JSON
// API that accepts simulation jobs — link exchanges, control streams, WLAN
// coordination rounds, and named experiment figures — runs them on a
// sharded worker pool with deterministic per-job seeds, and streams each
// job's results back as NDJSON.
//
//	cos-serve -addr :8866 -shards 4 -queue-depth 32
//	cos-serve -addr :8866 -metrics-addr :8080 -stats 10s
//	cos-serve -addr :8866 -data-dir /var/lib/cos-serve
//
// Submit with plain curl:
//
//	curl -d '{"kind":"link","packets":200,"seed":7}' localhost:8866/jobs
//	curl localhost:8866/jobs/job-000001
//	curl -N localhost:8866/jobs/job-000001/result
//
// Results are content-addressed: every job's spec digests to a stable
// SHA-256 key (the "digest" field of its status), equal digests mean
// byte-identical NDJSON streams, and a repeat submission is served from
// the in-memory result cache (200 + "X-Cos-Cache: hit" instead of 202)
// without re-running. With -data-dir set the daemon is also durable: a
// write-ahead log records every admission and terminal result, and a
// restart on the same directory re-serves completed digests
// byte-identically (GET /jobs/<digest>/result) and re-runs whatever the
// previous process left unfinished.
//
// Admission is bounded: when a shard queue is full, submits fail with 429
// and a Retry-After hint. On SIGTERM (or SIGINT) the daemon drains
// gracefully — it stops admitting (submits then get 503), gives queued and
// running jobs the -drain window to finish, cancels the rest, flushes
// metrics, and exits 0.
//
// Every lifecycle transition — the daemon's own (server_listening,
// server_exit) and every job's — is a typed event in a bounded in-memory
// journal, streamed on GET /events and mirrored to stderr as JSON lines.
// Periodic summary frames (-summary-every) carry rolling-window rates and
// latency quantiles; cos-top renders them as a live console.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"cos/internal/cli"
	"cos/internal/obs/event"
	"cos/internal/serve"
	"cos/internal/serve/cache"
	servehttp "cos/internal/serve/http"
	"cos/internal/serve/store"
)

// Daemon-level journal event types; the serve core adds the per-job ones.
const (
	// eventListening: the API socket is bound and accepting requests.
	eventListening = "server_listening"
	// eventExit: the daemon is done; clean reports a full drain.
	eventExit = "server_exit"
)

// listeningEvent is the payload of eventListening.
type listeningEvent struct {
	Addr       string `json:"addr"`
	Shards     int    `json:"shards"`
	QueueDepth int    `json:"queue_depth"`
}

// exitEvent is the payload of eventExit.
type exitEvent struct {
	Clean bool `json:"clean"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// notifyReady, when non-nil, receives the bound listen address once the
// API is accepting requests. Tests hook it to find the ephemeral port.
var notifyReady func(addr string)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cos-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8866", "HTTP listen address for the job API")
		shards     = fs.Int("shards", 2, "worker shards (max jobs in flight)")
		queueDepth = fs.Int("queue-depth", 16, "queued jobs per shard before submits get 429")
		timeout    = fs.Duration("timeout", 60*time.Second, "default per-job deadline (specs may override with timeout_ms)")
		drain      = fs.Duration("drain", 5*time.Second, "drain window: time in-flight jobs get to finish after SIGTERM")
		journalCap = fs.Int("journal-cap", 4096, "events retained in the in-memory journal behind GET /events")
		summary    = fs.Duration("summary-every", time.Second, "rolling-window summary frame interval (0 disables)")
		dataDir    = fs.String("data-dir", "", "durable job store directory (WAL + result bodies); empty disables persistence")
		cacheOn    = fs.Bool("cache", true, "serve repeat submissions from the content-addressed result cache")
		cacheMax   = fs.Int64("cache-max-bytes", cache.DefaultMaxBytes, "result cache budget in bytes of stored NDJSON")
	)
	obsAddr, obsStats := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	app, err := cli.Boot(*obsAddr, *obsStats, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "cos-serve: %v\n", err)
		return 1
	}
	defer app.Close()

	// The journal is the daemon's single source of operational truth: the
	// serve core writes job lifecycle events into it, the daemon adds its
	// own process-level markers, /events streams it, and the stderr mirror
	// replaces ad-hoc prints (summary frames are mirrored only when a
	// per-event feed would be too chatty anyway — they are not).
	journal := event.New(*journalCap)
	journal.Mirror(stderr, func(ev event.Event) bool {
		return ev.Type != serve.EventSummary
	})

	// Persistence and caching are daemon policy, not core policy: the serve
	// core treats both as opt-in so its determinism tests exercise real
	// recomputation, while the daemon defaults the cache on and enables the
	// durable store whenever -data-dir names a directory.
	var resultCache *cache.Cache
	if *cacheOn {
		resultCache = cache.New(*cacheMax)
	}
	var jobStore *store.Store
	if *dataDir != "" {
		var err error
		jobStore, err = store.Open(*dataDir)
		if err != nil {
			fmt.Fprintf(stderr, "cos-serve: %v\n", err)
			return 1
		}
		defer jobStore.Close()
	}

	srv := serve.New(serve.Config{
		Shards:         *shards,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		Journal:        journal,
		SummaryEvery:   *summary,
		Cache:          resultCache,
		Store:          jobStore,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "cos-serve: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: servehttp.NewHandler(srv)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	journal.Append(eventListening, "", listeningEvent{
		Addr: ln.Addr().String(), Shards: *shards, QueueDepth: *queueDepth,
	})
	if notifyReady != nil {
		notifyReady(ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "cos-serve: %v\n", err)
		return 1
	case <-app.Context().Done():
	}

	// Graceful drain: admission stops first, so requests racing the signal
	// see 503 while status and result streams keep working until every job
	// is terminal (or the window expires and the rest are cancelled). The
	// core emits drain_begin/drain_end around this.
	clean := srv.Drain(*drain)
	// The journal is the daemon's, not the server's: append the final exit
	// marker, then close it so /events streams end and Shutdown can finish.
	journal.Append(eventExit, "", exitEvent{Clean: clean})
	journal.Close()
	// Every job is now terminal, so open result streams hit EOF on their
	// own; Shutdown (not Close) lets those final flushes reach the client.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	httpSrv.Shutdown(shutdownCtx)
	cancel()
	app.Close() // flush the stats logger and release the metrics listener
	return 0
}
