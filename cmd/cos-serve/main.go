// Command cos-serve is the long-lived CoS simulation service: an HTTP/JSON
// API that accepts simulation jobs — link exchanges, control streams, WLAN
// coordination rounds, and named experiment figures — runs them on a
// sharded worker pool with deterministic per-job seeds, and streams each
// job's results back as NDJSON.
//
//	cos-serve -addr :8866 -shards 4 -queue-depth 32
//	cos-serve -addr :8866 -metrics-addr :8080 -stats 10s
//
// Submit with plain curl:
//
//	curl -d '{"kind":"link","packets":200,"seed":7}' localhost:8866/jobs
//	curl localhost:8866/jobs/job-000001
//	curl -N localhost:8866/jobs/job-000001/result
//
// Admission is bounded: when a shard queue is full, submits fail with 429
// and a Retry-After hint. On SIGTERM (or SIGINT) the daemon drains
// gracefully — it stops admitting (submits then get 503), gives queued and
// running jobs the -drain window to finish, cancels the rest, flushes
// metrics, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"cos/internal/cli"
	"cos/internal/serve"
	servehttp "cos/internal/serve/http"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// notifyReady, when non-nil, receives the bound listen address once the
// API is accepting requests. Tests hook it to find the ephemeral port.
var notifyReady func(addr string)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cos-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8866", "HTTP listen address for the job API")
		shards     = fs.Int("shards", 2, "worker shards (max jobs in flight)")
		queueDepth = fs.Int("queue-depth", 16, "queued jobs per shard before submits get 429")
		timeout    = fs.Duration("timeout", 60*time.Second, "default per-job deadline (specs may override with timeout_ms)")
		drain      = fs.Duration("drain", 5*time.Second, "drain window: time in-flight jobs get to finish after SIGTERM")
	)
	obsAddr, obsStats := cli.ObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	app, err := cli.Boot(*obsAddr, *obsStats, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "cos-serve: %v\n", err)
		return 1
	}
	defer app.Close()

	srv := serve.New(serve.Config{
		Shards:         *shards,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "cos-serve: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: servehttp.NewHandler(srv)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "cos-serve: serving job API on http://%s (shards=%d queue-depth=%d)\n",
		ln.Addr(), *shards, *queueDepth)
	if notifyReady != nil {
		notifyReady(ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "cos-serve: %v\n", err)
		return 1
	case <-app.Context().Done():
	}

	// Graceful drain: admission stops first, so requests racing the signal
	// see 503 while status and result streams keep working until every job
	// is terminal (or the window expires and the rest are cancelled).
	fmt.Fprintf(stdout, "cos-serve: signal received, draining (window %v)\n", *drain)
	clean := srv.Drain(*drain)
	// Every job is now terminal, so open result streams hit EOF on their
	// own; Shutdown (not Close) lets those final flushes reach the client.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	httpSrv.Shutdown(shutdownCtx)
	cancel()
	app.Close() // flush the stats logger and release the metrics listener
	if clean {
		fmt.Fprintln(stdout, "cos-serve: drained cleanly")
	} else {
		fmt.Fprintln(stdout, "cos-serve: drain window expired; remaining jobs cancelled")
	}
	return 0
}
