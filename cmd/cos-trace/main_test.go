package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cos/internal/trace"
)

// sampleTrace renders a minimal schema-v2 trace.
func sampleTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for seq := 0; seq < 3; seq++ {
		ev := trace.Event{Seq: seq, RateMbps: 24, DataOK: true, DataBytes: 64, MeasuredSNRdB: 18}
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSummaryFromStdin: "-" reads the trace from stdin, same output as a
// file path.
func TestSummaryFromStdin(t *testing.T) {
	body := sampleTrace(t)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	var fromFile, fromStdin, stderr bytes.Buffer
	if code := run([]string{"summary", path}, strings.NewReader(""), &fromFile, &stderr); code != 0 {
		t.Fatalf("summary %s: exit %d, stderr %s", path, code, stderr.String())
	}
	if code := run([]string{"summary", "-"}, bytes.NewReader(body), &fromStdin, &stderr); code != 0 {
		t.Fatalf("summary -: exit %d, stderr %s", code, stderr.String())
	}
	if fromFile.String() != fromStdin.String() {
		t.Fatalf("stdin and file summaries differ:\n%s\n---\n%s", fromFile.String(), fromStdin.String())
	}
	if !strings.Contains(fromStdin.String(), "events:                 3") {
		t.Fatalf("summary missing event count:\n%s", fromStdin.String())
	}
}

// TestReportFromStdin: the report subcommand accepts "-" too.
func TestReportFromStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"report", "-"}, bytes.NewReader(sampleTrace(t)), &stdout, &stderr); code != 0 {
		t.Fatalf("report -: exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "<") {
		t.Fatal("report produced no HTML")
	}
}

// TestMalformedHeaderExitsUsage: input that breaks at the header position
// is a usage error — exit 2 with the usage text — while a trace that
// breaks mid-stream stays a data error (exit 1).
func TestMalformedHeaderExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"summary", "-"}, strings.NewReader("this is not ndjson\n"), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("malformed header: exit %d, want 2 (stderr %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "usage: cos-trace") {
		t.Fatalf("stderr missing usage text:\n%s", stderr.String())
	}

	// Valid header, then garbage: a data error, not a usage error.
	stderr.Reset()
	mid := "{\"cos_trace_schema\":2}\n{\"seq\":1}\nnot json\n"
	code = run([]string{"summary", "-"}, strings.NewReader(mid), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("mid-stream corruption: exit %d, want 1 (stderr %s)", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "usage: cos-trace") {
		t.Fatal("mid-stream corruption should not print usage")
	}
}

// TestMissingFileExitsOne: a nonexistent path is an I/O error, exit 1.
func TestMissingFileExitsOne(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"summary", filepath.Join(t.TempDir(), "nope.jsonl")}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
}
