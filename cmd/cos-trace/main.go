// Command cos-trace summarizes a JSON-lines event trace captured with
// cos-sim -trace: packet and control delivery rates, detector error
// totals, control throughput, and the data-rate histogram.
//
//	cos-sim -snr 18 -packets 500 -trace session.jsonl
//	cos-trace session.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cos/internal/obs/obshttp"
	"cos/internal/trace"
)

func main() {
	var (
		obsAddr  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address (e.g. :8080)")
		obsStats = flag.Duration("stats", 0, "print a metrics stats line to stderr at this interval (0 = off)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cos-trace [flags] <trace.jsonl>")
		os.Exit(2)
	}
	stopObs, err := obshttp.Expose(*obsAddr, *obsStats, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-trace: %v\n", err)
		os.Exit(1)
	}
	defer stopObs()
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-trace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-trace: %v\n", err)
		os.Exit(1)
	}
	s, err := trace.Summarize(events)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cos-trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("events:                 %d\n", s.Events)
	fmt.Printf("data PRR:               %.4f\n", s.DataPRR)
	fmt.Printf("control attempts:       %d\n", s.ControlAttempts)
	fmt.Printf("control delivery:       %.4f\n", s.ControlDelivery)
	fmt.Printf("control CRC-verified:   %.4f\n", s.ControlVerifiedRate)
	fmt.Printf("control throughput:     %.0f bit/s\n", s.ControlThroughputBps)
	fmt.Printf("silence symbols:        %d\n", s.SilencesTotal)
	fmt.Printf("detector errors:        %d FP, %d FN\n", s.FalsePositives, s.FalseNegatives)
	fmt.Printf("mean measured SNR:      %.1f dB\n", s.MeanMeasuredSNRdB)
	rates := make([]int, 0, len(s.RateHistogram))
	for r := range s.RateHistogram {
		rates = append(rates, r)
	}
	sort.Ints(rates)
	fmt.Printf("rate histogram:        ")
	for _, r := range rates {
		fmt.Printf(" %dMbps:%d", r, s.RateHistogram[r])
	}
	fmt.Println()
}
