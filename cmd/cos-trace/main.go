// Command cos-trace inspects a JSON-lines event trace captured with
// cos-sim -trace or exported from cos-serve's /jobs/{key}/trace endpoint.
//
//	cos-trace session.jsonl                  # summary (default subcommand)
//	cos-trace summary [flags] session.jsonl  # delivery/detector/rate summary
//	cos-trace report -o out.html session.jsonl
//	curl -s $COS/jobs/$ID/trace | cos-trace summary -   # "-" reads stdin
//
// summary prints packet and control delivery rates, detector error totals,
// control throughput, and the data-rate histogram. report renders the
// flight-recorder view — stage latencies, EVM waterfall, erasure and
// symbol-error maps — as a self-contained HTML file (stdout by default).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cos/internal/cli"
	"cos/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage: cos-trace [summary|report] [flags] <trace.jsonl>

subcommands:
  summary   print delivery, detector and rate statistics (default)
  report    render a self-contained HTML flight-recorder report

"-" as the trace path reads NDJSON from stdin (e.g. piped from
curl .../jobs/{key}/trace); run "cos-trace <subcommand> -h" for flags`)
	return 2
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	// A recognized first argument selects the subcommand; anything else is
	// taken as the trace path for the historical default, `cos-trace
	// <trace.jsonl>`, which behaves as `summary`.
	sub := "summary"
	if len(args) > 0 {
		switch args[0] {
		case "summary", "report":
			sub, args = args[0], args[1:]
		case "help", "-h", "-help", "--help":
			return usage(stderr)
		}
	}
	switch sub {
	case "report":
		return runReport(args, stdin, stdout, stderr)
	default:
		return runSummary(args, stdin, stdout, stderr)
	}
}

// parseTraceArg parses flags on fs and returns the single positional trace
// path. All subcommands funnel usage errors through here: bad flags and a
// wrong argument count both exit 2 with the usage line on stderr.
func parseTraceArg(fs *flag.FlagSet, args []string, stderr io.Writer) (string, bool) {
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return "", false // flag package already printed the error + usage
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "usage: cos-trace %s [flags] <trace.jsonl>\n", fs.Name())
		return "", false
	}
	return fs.Arg(0), true
}

// readTrace loads the trace at path ("-" reads stdin) and returns the
// events plus an exit code: 0 on success, 1 on I/O or mid-stream data
// errors, 2 when the stream breaks at the header position — the input is
// not a trace at all, which is a usage error (wrong file, wrong pipe), so
// it also prints the usage line.
func readTrace(path string, stdin io.Reader, stderr io.Writer) ([]trace.Event, int, int) {
	src := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "cos-trace: %v\n", err)
			return nil, 0, 1
		}
		defer f.Close()
		src = f
	}
	events, version, err := trace.ReadVersioned(src)
	if err != nil {
		fmt.Fprintf(stderr, "cos-trace: %v\n", err)
		var ferr *trace.FormatError
		if errors.As(err, &ferr) && ferr.Event == 0 {
			return nil, 0, usage(stderr)
		}
		return nil, 0, 1
	}
	return events, version, 0
}

func runSummary(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	obsAddr, obsStats := cli.ObsFlags(fs)
	path, ok := parseTraceArg(fs, args, stderr)
	if !ok {
		return 2
	}
	app, err := cli.Boot(*obsAddr, *obsStats, os.Stderr)
	if err != nil {
		fmt.Fprintf(stderr, "cos-trace: %v\n", err)
		return 1
	}
	defer app.Close()
	events, version, code := readTrace(path, stdin, stderr)
	if code != 0 {
		return code
	}
	s, err := trace.Summarize(events)
	if err != nil {
		fmt.Fprintf(stderr, "cos-trace: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "schema version:         %d\n", version)
	fmt.Fprintf(stdout, "events:                 %d\n", s.Events)
	fmt.Fprintf(stdout, "data PRR:               %.4f\n", s.DataPRR)
	fmt.Fprintf(stdout, "control attempts:       %d\n", s.ControlAttempts)
	fmt.Fprintf(stdout, "control delivery:       %.4f\n", s.ControlDelivery)
	fmt.Fprintf(stdout, "control CRC-verified:   %.4f\n", s.ControlVerifiedRate)
	fmt.Fprintf(stdout, "control throughput:     %.0f bit/s\n", s.ControlThroughputBps)
	fmt.Fprintf(stdout, "silence symbols:        %d\n", s.SilencesTotal)
	fmt.Fprintf(stdout, "detector errors:        %d FP, %d FN\n", s.FalsePositives, s.FalseNegatives)
	fmt.Fprintf(stdout, "mean measured SNR:      %.1f dB\n", s.MeanMeasuredSNRdB)
	fmt.Fprintf(stdout, "probes:                 %d\n", s.Probes)
	rates := make([]int, 0, len(s.RateHistogram))
	for r := range s.RateHistogram {
		rates = append(rates, r)
	}
	sort.Ints(rates)
	fmt.Fprintf(stdout, "rate histogram:        ")
	for _, r := range rates {
		fmt.Fprintf(stdout, " %dMbps:%d", r, s.RateHistogram[r])
	}
	fmt.Fprintln(stdout)
	if len(s.StageNSTotals) > 0 {
		stages := make([]string, 0, len(s.StageNSTotals))
		for st := range s.StageNSTotals {
			stages = append(stages, st)
		}
		sort.Strings(stages)
		fmt.Fprintf(stdout, "stage time totals:     ")
		for _, st := range stages {
			fmt.Fprintf(stdout, " %s:%.2fms", st, float64(s.StageNSTotals[st])/1e6)
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

func runReport(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	out := fs.String("o", "", "write the HTML report to this file (default stdout)")
	path, ok := parseTraceArg(fs, args, stderr)
	if !ok {
		return 2
	}
	events, version, code := readTrace(path, stdin, stderr)
	if code != 0 {
		return code
	}
	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "cos-trace: %v\n", err)
			return 1
		}
		defer f.Close()
		dst = f
	}
	if err := trace.WriteReport(dst, events, version); err != nil {
		fmt.Fprintf(stderr, "cos-trace: %v\n", err)
		return 1
	}
	if *out != "" {
		fmt.Fprintf(stderr, "cos-trace: wrote %s (%d events, schema v%d)\n", *out, len(events), version)
	}
	return 0
}
